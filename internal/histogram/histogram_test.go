package histogram

import (
	"math"
	"sort"
	"testing"

	"privrange/internal/dataset"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

func drawSets(t *testing.T, series *dataset.Series, k int, p float64, seed int64) []*sampling.SampleSet {
	t.Helper()
	parts, err := series.Partition(k)
	if err != nil {
		t.Fatal(err)
	}
	root := stats.NewRNG(seed)
	sets := make([]*sampling.SampleSet, k)
	for i, part := range parts {
		cp := make([]float64, len(part))
		copy(cp, part)
		sort.Float64s(cp)
		set, err := sampling.Draw(cp, p, root.Child(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = set
	}
	return sets
}

// trueBandCounts computes the exact histogram (last band closed).
func trueBandCounts(series *dataset.Series, boundaries []float64) []float64 {
	counts := make([]float64, len(boundaries)-1)
	last := len(counts) - 1
	for _, v := range series.Values {
		for i := 0; i < len(counts); i++ {
			hi := boundaries[i+1]
			inside := v >= boundaries[i] && (v < hi || (i == last && v == hi))
			if inside {
				counts[i]++
				break
			}
		}
	}
	return counts
}

var aqiBands = []float64{0, 50, 100, 150, 300}

func TestBuilderValidation(t *testing.T) {
	t.Parallel()
	sets := []*sampling.SampleSet{{N: 10}}
	cases := []struct {
		name       string
		b          Builder
		sets       []*sampling.SampleSet
		boundaries []float64
	}{
		{name: "p zero", b: Builder{P: 0}, sets: sets, boundaries: aqiBands},
		{name: "p big", b: Builder{P: 2}, sets: sets, boundaries: aqiBands},
		{name: "no sets", b: Builder{P: 0.5}, sets: nil, boundaries: aqiBands},
		{name: "nil set", b: Builder{P: 0.5}, sets: []*sampling.SampleSet{nil}, boundaries: aqiBands},
		{name: "one boundary", b: Builder{P: 0.5}, sets: sets, boundaries: []float64{1}},
		{name: "unsorted", b: Builder{P: 0.5}, sets: sets, boundaries: []float64{5, 1}},
		{name: "duplicate", b: Builder{P: 0.5}, sets: sets, boundaries: []float64{1, 1, 2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if _, err := tc.b.Estimate(tc.sets, tc.boundaries); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestEstimateExactAtFullSampling(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 1, Records: 4000})
	if err != nil {
		t.Fatal(err)
	}
	sets := drawSets(t, series, 5, 1, 3)
	h, err := Builder{P: 1}.Estimate(sets, aqiBands)
	if err != nil {
		t.Fatal(err)
	}
	want := trueBandCounts(series, aqiBands)
	for i, c := range h.Counts {
		if math.Abs(c-want[i]) > 1e-9 {
			t.Errorf("band %d = %v, want %v", i, c, want[i])
		}
	}
	if math.Abs(h.Total()-float64(series.Len())) > 1e-9 {
		t.Errorf("total = %v, want %d", h.Total(), series.Len())
	}
}

func TestEstimateUnbiased(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.ParticulateMatter, dataset.GenerateConfig{Seed: 5, Records: 4000})
	if err != nil {
		t.Fatal(err)
	}
	want := trueBandCounts(series, aqiBands)
	const (
		p      = 0.08
		trials = 1500
		k      = 5
	)
	b := Builder{P: p}
	sums := make([]stats.Running, len(aqiBands)-1)
	for trial := 0; trial < trials; trial++ {
		sets := drawSets(t, series, k, p, int64(1000+trial))
		h, err := b.Estimate(sets, aqiBands)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range h.Counts {
			sums[i].Add(c - want[i])
		}
	}
	for i := range sums {
		if se := sums[i].StdErr(); math.Abs(sums[i].Mean()) > 5*se+1e-9 {
			t.Errorf("band %d biased: mean error %v (5 SE = %v)", i, sums[i].Mean(), 5*se)
		}
	}
}

func TestPrivateHistogramNoise(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.CarbonMonoxide, dataset.GenerateConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.3
	sets := drawSets(t, series, 8, p, 9)
	b := Builder{P: p}
	rng := stats.NewRNG(11)
	h, err := b.Private(sets, aqiBands, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := trueBandCounts(series, aqiBands)
	for i, c := range h.Counts {
		// Sampling sd ~ √k/p plus Lap((1/p)/1): generous 6-sigma bound.
		if math.Abs(c-want[i]) > 500 {
			t.Errorf("band %d = %v, want ~%v", i, c, want[i])
		}
	}
	eff, err := b.EffectiveEpsilon(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if eff <= 0 || eff >= 1.0 {
		t.Errorf("amplified epsilon %v should be in (0, 1)", eff)
	}
}

func TestPrivateDiscreteIsInteger(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.SulfurDioxide, dataset.GenerateConfig{Seed: 13, Records: 5000})
	if err != nil {
		t.Fatal(err)
	}
	sets := drawSets(t, series, 5, 0.4, 15)
	h, err := Builder{P: 0.4}.PrivateDiscrete(sets, aqiBands, 0.5, stats.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range h.Counts {
		if c != math.Trunc(c) {
			t.Errorf("band %d count %v not integer", i, c)
		}
	}
	if _, err := (Builder{P: 0.4}).PrivateDiscrete(sets, aqiBands, 0, stats.NewRNG(1)); err == nil {
		t.Error("epsilon=0 should fail")
	}
	if _, err := (Builder{P: 0.4}).Private(sets, aqiBands, -1, stats.NewRNG(1)); err == nil {
		t.Error("negative epsilon should fail")
	}
}

func TestNormalize(t *testing.T) {
	t.Parallel()
	h := &Histogram{Boundaries: []float64{0, 1, 2, 3}, Counts: []float64{-5, 30, 20}}
	if err := h.Normalize(100); err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 0 {
		t.Errorf("negative count should clamp to 0, got %v", h.Counts[0])
	}
	if math.Abs(h.Total()-100) > 1e-9 {
		t.Errorf("total = %v, want 100", h.Total())
	}
	// Proportions preserved among the positive bands.
	if math.Abs(h.Counts[1]/h.Counts[2]-1.5) > 1e-9 {
		t.Errorf("ratio distorted: %v", h.Counts)
	}
	if err := h.Normalize(0); err == nil {
		t.Error("total=0 should fail")
	}
	zero := &Histogram{Boundaries: []float64{0, 1}, Counts: []float64{-3}}
	if err := zero.Normalize(10); err == nil {
		t.Error("all-zero should fail")
	}
	if h.Buckets() != 3 {
		t.Errorf("Buckets = %d", h.Buckets())
	}
}

func TestParallelBeatsSequentialComposition(t *testing.T) {
	t.Parallel()
	// The point of the histogram release: B bands cost ε total under
	// parallel composition, vs B·ε under sequential range queries. At
	// equal total budget, the per-band noise of the parallel release is
	// B times smaller in scale.
	series, err := dataset.GenerateSeries(dataset.NitrogenDioxide, dataset.GenerateConfig{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	const (
		p        = 0.3
		totalEps = 0.5
		trials   = 300
	)
	bands := aqiBands
	numBands := len(bands) - 1
	sets := drawSets(t, series, 8, p, 21)
	b := Builder{P: p}
	base, err := b.Estimate(sets, bands)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(23)
	var parallelErr, sequentialErr stats.Running
	for trial := 0; trial < trials; trial++ {
		hp, err := b.Private(sets, bands, totalEps, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Sequential: each band answered as its own query with ε/B.
		hs, err := b.Private(sets, bands, totalEps/float64(numBands), rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Counts {
			parallelErr.Add(math.Abs(hp.Counts[i] - base.Counts[i]))
			sequentialErr.Add(math.Abs(hs.Counts[i] - base.Counts[i]))
		}
	}
	if sequentialErr.Mean() < 2*parallelErr.Mean() {
		t.Errorf("parallel composition should be far more accurate: parallel %v vs sequential %v",
			parallelErr.Mean(), sequentialErr.Mean())
	}
}
