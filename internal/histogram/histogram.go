// Package histogram releases differentially-private band histograms —
// e.g. the AQI good/moderate/unhealthy distribution — from the same
// rank-annotated samples the range-counting pipeline collects.
//
// Because the bands are disjoint, one record influences exactly one
// bucket, so *parallel composition* applies: perturbing every bucket
// with Lap(Δγ̂/ε) makes the entire histogram ε-DP for the price of one
// query — a strictly better deal than issuing B independent range
// queries under sequential composition (which would cost B·ε′). The
// ablation bench quantifies the difference.
package histogram

import (
	"fmt"
	"math"
	"sort"

	"privrange/internal/dp"
	"privrange/internal/quantile"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// Histogram is a band histogram: Counts[i] estimates the number of
// records in [Boundaries[i], Boundaries[i+1]), with the final band
// closed on the right.
type Histogram struct {
	Boundaries []float64
	Counts     []float64
}

// Buckets returns the number of bands.
func (h *Histogram) Buckets() int { return len(h.Counts) }

// Total returns the sum of all band counts.
func (h *Histogram) Total() float64 {
	sum := 0.0
	for _, c := range h.Counts {
		sum += c
	}
	return sum
}

// Normalize post-processes the histogram to be physically consistent:
// negative counts are clamped to zero and the counts are rescaled to sum
// to total. Post-processing never degrades differential privacy. It
// returns an error for a non-positive total or an all-zero histogram.
func (h *Histogram) Normalize(total float64) error {
	if total <= 0 {
		return fmt.Errorf("histogram: non-positive total %v", total)
	}
	sum := 0.0
	for i, c := range h.Counts {
		if c < 0 {
			h.Counts[i] = 0
		}
		sum += h.Counts[i]
	}
	if sum == 0 {
		return fmt.Errorf("histogram: cannot normalize all-zero histogram")
	}
	scale := total / sum
	for i := range h.Counts {
		h.Counts[i] *= scale
	}
	return nil
}

// Builder estimates histograms over per-node sample sets drawn at rate
// P.
type Builder struct {
	// P is the Bernoulli sampling rate the sets were drawn with.
	P float64
}

func (b Builder) validate(sets []*sampling.SampleSet, boundaries []float64) error {
	if b.P <= 0 || b.P > 1 {
		return fmt.Errorf("histogram: sampling probability %v outside (0, 1]", b.P)
	}
	if len(sets) == 0 {
		return fmt.Errorf("histogram: no sample sets")
	}
	for i, set := range sets {
		if set == nil {
			return fmt.Errorf("histogram: nil sample set for node %d", i)
		}
	}
	if len(boundaries) < 2 {
		return fmt.Errorf("histogram: need at least 2 boundaries, have %d", len(boundaries))
	}
	if !sort.Float64sAreSorted(boundaries) {
		return fmt.Errorf("histogram: boundaries not ascending")
	}
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] == boundaries[i-1] {
			return fmt.Errorf("histogram: duplicate boundary %v", boundaries[i])
		}
	}
	return nil
}

// Estimate builds the unbiased (noise-free) sampled histogram: band i
// holds R̂_<(b_{i+1}) − R̂_<(b_i), with the final band extended to
// include values equal to the last boundary.
func (b Builder) Estimate(sets []*sampling.SampleSet, boundaries []float64) (*Histogram, error) {
	if err := b.validate(sets, boundaries); err != nil {
		return nil, err
	}
	est := quantile.Estimator{P: b.P}
	ranks := make([]float64, len(boundaries))
	for i, bd := range boundaries {
		r, err := est.RankLT(sets, bd)
		if err != nil {
			return nil, err
		}
		ranks[i] = r
	}
	// Close the final band on the right: add the records equal to the
	// last boundary.
	lastLE, err := est.RankLE(sets, boundaries[len(boundaries)-1])
	if err != nil {
		return nil, err
	}
	ranks[len(ranks)-1] = lastLE

	h := &Histogram{
		Boundaries: append([]float64(nil), boundaries...),
		Counts:     make([]float64, len(boundaries)-1),
	}
	for i := range h.Counts {
		h.Counts[i] = ranks[i+1] - ranks[i]
	}
	return h, nil
}

// Private builds an ε-differentially-private histogram: the sampled
// estimate plus independent Lap(Δγ̂/ε) noise per band, with the paper's
// expected sensitivity Δγ̂ = 1/p. By parallel composition over the
// disjoint bands the whole histogram is ε-DP (before sampling
// amplification; the effective budget is ln(1+p(e^ε−1)), see
// EffectiveEpsilon).
func (b Builder) Private(sets []*sampling.SampleSet, boundaries []float64, epsilon float64, rng *stats.RNG) (*Histogram, error) {
	h, err := b.Estimate(sets, boundaries)
	if err != nil {
		return nil, err
	}
	mech, err := dp.NewMechanism(epsilon, 1/b.P)
	if err != nil {
		return nil, err
	}
	for i := range h.Counts {
		h.Counts[i] = mech.Perturb(h.Counts[i], rng)
	}
	return h, nil
}

// PrivateDiscrete is Private with geometric (integer) noise and rounded
// band counts — releases that are themselves integers.
func (b Builder) PrivateDiscrete(sets []*sampling.SampleSet, boundaries []float64, epsilon float64, rng *stats.RNG) (*Histogram, error) {
	h, err := b.Estimate(sets, boundaries)
	if err != nil {
		return nil, err
	}
	mech, err := dp.NewDiscreteMechanism(epsilon, 1/b.P)
	if err != nil {
		return nil, err
	}
	for i := range h.Counts {
		h.Counts[i] = float64(mech.Perturb(int64(math.Round(h.Counts[i])), rng))
	}
	return h, nil
}

// EffectiveEpsilon returns the histogram's amplified privacy guarantee
// under sampling at rate p (Lemma 3.4 applied to the parallel-composed
// release).
func (b Builder) EffectiveEpsilon(epsilon float64) (float64, error) {
	return dp.AmplifyBySampling(epsilon, b.P)
}
