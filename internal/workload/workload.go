// Package workload generates range-counting query workloads for the
// experiments: the paper evaluates "air pollution levels with different
// ranges", i.e. batches of [l, u] queries over a pollutant series. All
// generators are deterministic given their inputs so every figure
// reproduces exactly.
package workload

import (
	"fmt"
	"math"
	"sort"

	"privrange/internal/estimator"
	"privrange/internal/stats"
)

// Uniform draws queries with endpoints uniform over [Min, Max],
// swapped into order.
type Uniform struct {
	Min, Max float64
	Seed     int64
}

// Queries returns n queries. It returns an error for n < 1 or an empty
// domain.
func (g Uniform) Queries(n int) ([]estimator.Query, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: n %d < 1", n)
	}
	if !(g.Min < g.Max) {
		return nil, fmt.Errorf("workload: empty domain [%v, %v]", g.Min, g.Max)
	}
	rng := stats.NewRNG(g.Seed)
	out := make([]estimator.Query, n)
	span := g.Max - g.Min
	for i := range out {
		a := g.Min + rng.Float64()*span
		b := g.Min + rng.Float64()*span
		if a > b {
			a, b = b, a
		}
		out[i] = estimator.Query{L: a, U: b}
	}
	return out, nil
}

// WidthStratified emits queries of fixed widths at uniform positions — a
// balanced mix of narrow and wide ranges, the regime where RankCounting
// and BasicCounting diverge.
type WidthStratified struct {
	Min, Max float64
	// Widths lists the absolute query widths to cycle through.
	Widths []float64
	Seed   int64
}

// Queries returns n queries, cycling through the widths. It returns an
// error for invalid configuration.
func (g WidthStratified) Queries(n int) ([]estimator.Query, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: n %d < 1", n)
	}
	if !(g.Min < g.Max) {
		return nil, fmt.Errorf("workload: empty domain [%v, %v]", g.Min, g.Max)
	}
	if len(g.Widths) == 0 {
		return nil, fmt.Errorf("workload: no widths")
	}
	span := g.Max - g.Min
	for _, w := range g.Widths {
		if w <= 0 || w > span {
			return nil, fmt.Errorf("workload: width %v outside (0, %v]", w, span)
		}
	}
	rng := stats.NewRNG(g.Seed)
	out := make([]estimator.Query, n)
	for i := range out {
		w := g.Widths[i%len(g.Widths)]
		l := g.Min + rng.Float64()*(span-w)
		out[i] = estimator.Query{L: l, U: l + w}
	}
	return out, nil
}

// QuantileAnchored derives query bounds from the data distribution
// itself: bounds sit at value quantiles, so every query hits populated
// regions — the way a human analyst asks "how many readings were in the
// moderate band?".
type QuantileAnchored struct {
	// Values is the series the quantiles are computed from.
	Values []float64
	Seed   int64
}

// Queries returns n queries whose endpoints are random quantiles of the
// data.
func (g QuantileAnchored) Queries(n int) ([]estimator.Query, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: n %d < 1", n)
	}
	if len(g.Values) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 values, have %d", len(g.Values))
	}
	sorted := make([]float64, len(g.Values))
	copy(sorted, g.Values)
	sort.Float64s(sorted)
	rng := stats.NewRNG(g.Seed)
	out := make([]estimator.Query, n)
	for i := range out {
		qa := rng.Float64()
		qb := rng.Float64()
		if qa > qb {
			qa, qb = qb, qa
		}
		la := sorted[int(qa*float64(len(sorted)-1))]
		ub := sorted[int(math.Ceil(qb*float64(len(sorted)-1)))]
		out[i] = estimator.Query{L: la, U: ub}
	}
	return out, nil
}

// PaperGrid is the fixed deterministic workload the figure experiments
// use: a grid of pollution-band queries over the AQI domain [0, 300]
// covering narrow, moderate and wide ranges (including the standard
// good/moderate/unhealthy band boundaries). Identical for every run.
func PaperGrid() []estimator.Query {
	bounds := []float64{0, 25, 50, 75, 100, 125, 150, 200, 250, 300}
	var out []estimator.Query
	for i, l := range bounds {
		for _, u := range bounds[i+1:] {
			out = append(out, estimator.Query{L: l, U: u})
		}
	}
	return out
}
