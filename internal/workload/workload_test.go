package workload

import (
	"math"
	"reflect"
	"testing"

	"privrange/internal/estimator"
)

func validateAll(t *testing.T, qs []estimator.Query) {
	t.Helper()
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
	}
}

func TestUniform(t *testing.T) {
	t.Parallel()
	g := Uniform{Min: 0, Max: 100, Seed: 1}
	qs, err := g.Queries(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	validateAll(t, qs)
	for _, q := range qs {
		if q.L < 0 || q.U > 100 {
			t.Fatalf("query %+v outside domain", q)
		}
	}
	// Determinism.
	again, err := g.Queries(50)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qs, again) {
		t.Error("same seed should reproduce the workload")
	}
}

func TestUniformValidation(t *testing.T) {
	t.Parallel()
	if _, err := (Uniform{Min: 0, Max: 100}).Queries(0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := (Uniform{Min: 5, Max: 5}).Queries(1); err == nil {
		t.Error("empty domain should fail")
	}
}

func TestWidthStratified(t *testing.T) {
	t.Parallel()
	g := WidthStratified{Min: 0, Max: 100, Widths: []float64{5, 50}, Seed: 2}
	qs, err := g.Queries(10)
	if err != nil {
		t.Fatal(err)
	}
	validateAll(t, qs)
	for i, q := range qs {
		wantWidth := g.Widths[i%2]
		if got := q.U - q.L; math.Abs(got-wantWidth) > 1e-9 {
			t.Errorf("query %d width = %v, want %v", i, got, wantWidth)
		}
		if q.L < 0 || q.U > 100 {
			t.Errorf("query %+v escapes domain", q)
		}
	}
}

func TestWidthStratifiedValidation(t *testing.T) {
	t.Parallel()
	if _, err := (WidthStratified{Min: 0, Max: 10, Widths: []float64{20}}).Queries(1); err == nil {
		t.Error("width beyond span should fail")
	}
	if _, err := (WidthStratified{Min: 0, Max: 10, Widths: nil}).Queries(1); err == nil {
		t.Error("no widths should fail")
	}
	if _, err := (WidthStratified{Min: 0, Max: 10, Widths: []float64{0}}).Queries(1); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := (WidthStratified{Min: 0, Max: 10, Widths: []float64{1}}).Queries(0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestQuantileAnchored(t *testing.T) {
	t.Parallel()
	values := []float64{5, 1, 9, 3, 7, 2, 8}
	g := QuantileAnchored{Values: values, Seed: 3}
	qs, err := g.Queries(30)
	if err != nil {
		t.Fatal(err)
	}
	validateAll(t, qs)
	for _, q := range qs {
		if q.L < 1 || q.U > 9 {
			t.Errorf("query %+v outside data range [1, 9]", q)
		}
	}
	// Input must not be mutated (the generator sorts a copy).
	if !reflect.DeepEqual(values, []float64{5, 1, 9, 3, 7, 2, 8}) {
		t.Error("generator mutated its input")
	}
}

func TestQuantileAnchoredValidation(t *testing.T) {
	t.Parallel()
	if _, err := (QuantileAnchored{Values: []float64{1}}).Queries(1); err == nil {
		t.Error("too few values should fail")
	}
	if _, err := (QuantileAnchored{Values: []float64{1, 2}}).Queries(0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestPaperGrid(t *testing.T) {
	t.Parallel()
	qs := PaperGrid()
	if len(qs) != 45 { // C(10, 2)
		t.Fatalf("grid size = %d, want 45", len(qs))
	}
	validateAll(t, qs)
	seen := map[estimator.Query]bool{}
	for _, q := range qs {
		if seen[q] {
			t.Fatalf("duplicate query %+v", q)
		}
		seen[q] = true
		if q.L >= q.U {
			t.Fatalf("degenerate query %+v", q)
		}
	}
	// Deterministic by construction.
	if !reflect.DeepEqual(qs, PaperGrid()) {
		t.Error("grid should be identical across calls")
	}
}
