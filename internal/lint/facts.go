package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"sort"
)

// This file implements the suite's modular facts layer, mirroring
// golang.org/x/tools/go/analysis facts: per-package summaries of
// exported functions are computed in dependency order, SERIALIZED to
// JSON, and consumed — decoded from those bytes, never shared as live
// pointers — by the passes analyzing dependent packages. The
// serialization round trip is deliberate: it keeps summaries
// self-contained (a fact can never smuggle a *types.Object across
// packages) and it is exactly what an on-disk fact cache would store,
// so the facts_test round-trip proves cross-package summaries survive
// the loader boundary.
//
// Three analyzers contribute and consume facts:
//
//   - lockorder: which locks each exported function may acquire
//     (transitively), the held→acquired edges observed inside it, and
//     which blocking operations it may perform;
//   - detorder: whether an exported function (transitively, within the
//     deterministic-path package set) executes an iteration-order or
//     wall-clock hazard;
//   - atomicguard: which struct fields the package accesses through
//     sync/atomic address-taking calls.

// LockMode records how a lock is held: exclusively (Lock) or shared
// (RLock).
type LockMode string

const (
	// ModeExclusive is a sync.Mutex.Lock or sync.RWMutex.Lock hold.
	ModeExclusive LockMode = "x"
	// ModeShared is a sync.RWMutex.RLock hold.
	ModeShared LockMode = "s"
)

// LockEdge is one observed "may acquire To while holding From" pair.
// Pos is a rendered file:line:col so an edge stays meaningful after
// serialization, where token.Pos values from another loader would not.
type LockEdge struct {
	From     string   `json:"from"`
	FromMode LockMode `json:"from_mode"`
	To       string   `json:"to"`
	ToMode   LockMode `json:"to_mode"`
	Pos      string   `json:"pos"`
}

// BlockOp is one potentially blocking operation a function may perform
// (directly or through callees): an fsync, a net.Conn write/read, a
// channel send.
type BlockOp struct {
	// Op names the operation class: "fsync", "net.Conn write",
	// "net.Conn read", "channel send", "time.Sleep".
	Op  string `json:"op"`
	Pos string `json:"pos"`
}

// FuncFact summarizes one exported function for dependent packages.
type FuncFact struct {
	// Acquires maps each lock the function may acquire — transitively,
	// through same-package and already-summarized cross-package calls —
	// to the strongest mode observed.
	Acquires map[string]LockMode `json:"acquires,omitempty"`
	// Blocks lists the blocking operations the function may perform,
	// transitively.
	Blocks []BlockOp `json:"blocks,omitempty"`
	// DetHazards lists determinism hazards (unordered map iteration,
	// wall-clock reads, global math/rand draws) the function executes,
	// transitively within the deterministic-path package set. Each entry
	// is "pos: description".
	DetHazards []string `json:"det_hazards,omitempty"`
}

// PackageFacts is everything one package exports to its dependents.
type PackageFacts struct {
	Package string `json:"package"`
	// Funcs is keyed by "Name" or "Recv.Name" for exported functions and
	// methods.
	Funcs map[string]FuncFact `json:"funcs,omitempty"`
	// Edges is the package's full lock-order edge set, including edges
	// observed inside unexported functions: dependents need them to close
	// cycles that span packages.
	Edges []LockEdge `json:"edges,omitempty"`
	// AtomicFields lists fields ("pkgpath.Type.field") and package-level
	// vars ("pkgpath.var") this package accesses through address-taking
	// sync/atomic calls.
	AtomicFields []string `json:"atomic_fields,omitempty"`
}

// FactStore holds the serialized facts of every package processed so
// far, keyed by import path. Consumers decode on every read — the
// store intentionally never hands out shared mutable state.
type FactStore struct {
	encoded map[string][]byte
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{encoded: make(map[string][]byte)}
}

// Encoded returns the serialized facts for one package (nil when the
// package was never summarized). The bytes are the canonical exchange
// format; tests use this to prove the round trip.
func (s *FactStore) Encoded(pkgPath string) []byte {
	if s == nil {
		return nil
	}
	return s.encoded[pkgPath]
}

// ForPackage decodes the facts recorded for pkgPath.
func (s *FactStore) ForPackage(pkgPath string) (PackageFacts, bool) {
	if s == nil {
		return PackageFacts{}, false
	}
	raw, ok := s.encoded[pkgPath]
	if !ok {
		return PackageFacts{}, false
	}
	var pf PackageFacts
	if err := json.Unmarshal(raw, &pf); err != nil {
		return PackageFacts{}, false
	}
	return pf, true
}

// Packages lists the summarized import paths in sorted order.
func (s *FactStore) Packages() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.encoded))
	for p := range s.encoded {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// AllEdges returns the union of every recorded package's lock-order
// edges. Cycle detection runs over this global graph.
func (s *FactStore) AllEdges() []LockEdge {
	var out []LockEdge
	for _, p := range s.Packages() {
		pf, ok := s.ForPackage(p)
		if !ok {
			continue
		}
		out = append(out, pf.Edges...)
	}
	return out
}

// Add computes and serializes facts for one package, assuming the facts
// of every import it needs are already in the store (callers establish
// that by processing packages in dependency order; ComputeFacts does).
func (s *FactStore) Add(pkg *Package, fset *token.FileSet) error {
	pf := PackageFacts{
		Package: pkg.PkgPath,
		Funcs:   make(map[string]FuncFact),
	}

	locks := analyzeLocks(pkg, fset, s)
	for name, sum := range locks.summaries {
		if !exportedFuncName(name) {
			continue
		}
		ff := pf.Funcs[name]
		if len(sum.acquires) > 0 {
			ff.Acquires = make(map[string]LockMode, len(sum.acquires))
			for id, mode := range sum.acquires {
				ff.Acquires[id] = mode
			}
		}
		ff.Blocks = append(ff.Blocks, sum.blocks...)
		pf.Funcs[name] = ff
	}
	pf.Edges = locks.edges

	det := analyzeDet(pkg, fset, s)
	for name, hazards := range det.summaries {
		if !exportedFuncName(name) || len(hazards) == 0 {
			continue
		}
		ff := pf.Funcs[name]
		ff.DetHazards = append([]string(nil), hazards...)
		pf.Funcs[name] = ff
	}

	pf.AtomicFields = analyzeAtomic(pkg).atomicIDs()

	// Drop empty function facts so serialized facts stay minimal.
	for name, ff := range pf.Funcs {
		if len(ff.Acquires) == 0 && len(ff.Blocks) == 0 && len(ff.DetHazards) == 0 {
			delete(pf.Funcs, name)
		}
	}

	raw, err := json.Marshal(&pf)
	if err != nil {
		return fmt.Errorf("lint: encoding facts for %s: %w", pkg.PkgPath, err)
	}
	s.encoded[pkg.PkgPath] = raw
	return nil
}

// ComputeFacts summarizes pkgs in dependency order (imports before
// importers) and returns the populated store. Packages outside pkgs —
// the standard library, fixtures' synthetic paths — simply have no
// facts; consumers treat absence as the empty summary.
func ComputeFacts(pkgs []*Package, fset *token.FileSet) (*FactStore, error) {
	store := NewFactStore()
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	done := make(map[string]bool, len(pkgs))
	var visit func(p *Package) error
	visit = func(p *Package) error {
		if done[p.PkgPath] {
			return nil
		}
		done[p.PkgPath] = true // pre-mark: import cycles are a compile error anyway
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		return store.Add(p, fset)
	}
	// Deterministic order for the roots keeps serialized facts stable.
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.PkgPath)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(byPath[path]); err != nil {
			return nil, err
		}
	}
	return store, nil
}

// exportedFuncName reports whether a summary key ("Name" or
// "Recv.Name") denotes a function reachable from another package: the
// function name and, for methods, the receiver type must be exported.
func exportedFuncName(name string) bool {
	for i := 0; i < len(name); {
		c := name[i]
		if c < 'A' || c > 'Z' {
			return false
		}
		j := i
		for j < len(name) && name[j] != '.' {
			j++
		}
		if j == len(name) {
			return true
		}
		i = j + 1
	}
	return false
}
