package lint

import (
	"go/ast"
	"go/types"
)

// TelemetryTaint flags raw per-node sample data or un-noised estimates
// flowing into telemetry recording positions. The telemetry registry
// lives strictly outside the privacy boundary — its ops endpoint is
// scraped without any privacy accounting — so a single tainted label
// value or gauge sample would silently void the ε′ contract for every
// record it derives from.
//
// Sources of taint (the same set the privacyboundary analyzer guards):
//   - expressions whose type is a raw sample container —
//     sampling.Sample/SampleSet or index.Index (behind any pointers,
//     slices, arrays or maps);
//   - the un-noised estimates: (estimator.RankCounting).Estimate,
//     EstimateIndex, (*core.Engine).EstimateOnly, and the out slice
//     filled by EstimateIndexBatch;
//   - scalars extracted from a direct container (a field, element or
//     slice of one) and arithmetic over any tainted value.
//
// Sinks: every value or tag position of the telemetry API —
// telemetry.L arguments, Label literal fields, Counter.Add, Gauge.Set,
// Gauge.Add, Histogram.Observe/ObserveDuration, Trace.Begin/Mark/End,
// the span-attribute positions Trace.Annotate and SpanRecord.Annot
// (span annotations are exported verbatim on /traces), and every
// EventLog.Append argument.
//
// Unlike privacyboundary, the pass is field-sensitive on struct
// selectors: a clean sibling field of a struct that also holds sample
// sets (e.g. a snapshot's coverage next to its sets) is NOT tainted —
// only the container-typed fields themselves and the scalars pulled
// out of them are. Engine snapshots must be able to publish coverage
// and rate gauges while their sample sets stay forbidden.
var TelemetryTaint = &Analyzer{
	Name: "telemetrytaint",
	Doc: `flag flows of raw per-node samples or un-noised estimates into
telemetry label/value positions (telemetry.L, Gauge.Set, Counter.Add,
Histogram.Observe, Trace marks, span annotations via Trace.Annotate or
SpanRecord.Annot, EventLog.Append): the metrics registry and /traces are
scraped outside the privacy boundary, so only released aggregates,
operational counts and constant tags may be recorded`,
	Run: runTelemetryTaint,
}

const telemetryPkg = "privrange/internal/telemetry"

// telemetrySinkArgs maps telemetry functions/methods ("Name" or
// "Recv.Name") to the argument indexes that must stay clean.
var telemetrySinkArgs = map[string][]int{
	"L":                         {0, 1},
	"Counter.Add":               {0},
	"Gauge.Set":                 {0},
	"Gauge.Add":                 {0},
	"Histogram.Observe":         {0},
	"Histogram.ObserveDuration": {0},
	"Trace.Begin":               {0},
	"Trace.Mark":                {0},
	"Trace.End":                 {0},
	"EventLog.Append":           {0, 1, 2, 3},
	// Distributed-span attribute positions: span annotations are
	// exported verbatim on /traces, outside the privacy boundary.
	"Trace.Annotate":   {0, 1},
	"SpanRecord.Annot": {0, 1},
}

func runTelemetryTaint(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			t := &teleTaint{pass: pass, vars: make(map[*types.Var]bool)}
			for i := 0; i < 16; i++ {
				before := len(t.vars)
				ast.Inspect(fd.Body, t.propagate)
				if len(t.vars) == before {
					break
				}
			}
			ast.Inspect(fd.Body, t.checkSinks)
		}
	}
	return nil
}

type teleTaint struct {
	pass *Pass
	vars map[*types.Var]bool
}

// propagate marks variables assigned from value-tainted expressions.
func (t *teleTaint) propagate(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.propagateAssign(n.Lhs, n.Rhs)
	case *ast.ValueSpec:
		var lhs []ast.Expr
		for _, name := range n.Names {
			lhs = append(lhs, name)
		}
		t.propagateAssign(lhs, n.Values)
	case *ast.RangeStmt:
		if n.X != nil && t.tainted(n.X) {
			t.markVar(n.Key)
			t.markVar(n.Value)
		}
	case *ast.CallExpr:
		fn := calleeFunc(t.pass.TypesInfo, n)
		if isFuncNamed(fn, estimatorPkg, "RankCounting.EstimateIndexBatch") && len(n.Args) == 3 {
			t.markVar(n.Args[2])
		}
	}
	return true
}

func (t *teleTaint) propagateAssign(lhs, rhs []ast.Expr) {
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			if t.tainted(rhs[i]) {
				t.markVar(lhs[i])
			}
		}
	case len(rhs) == 1:
		if t.tainted(rhs[0]) {
			for _, l := range lhs {
				t.markVar(l)
			}
		}
	}
}

func (t *teleTaint) markVar(e ast.Expr) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := t.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = t.pass.TypesInfo.Uses[id]
	}
	if v, ok := obj.(*types.Var); ok {
		t.vars[v] = true
	}
}

// directContainer reports whether ty — behind pointers, slices, arrays
// and map values, but NOT through struct fields — is one of the raw
// sample container types. The struct-field exclusion is the analyzer's
// field-sensitivity: a struct that merely holds a container is not
// itself poisonous, only the container field is.
func directContainer(ty types.Type) bool {
	seen := make(map[types.Type]bool)
	for ty != nil && !seen[ty] {
		seen[ty] = true
		switch u := ty.(type) {
		case *types.Named:
			obj := u.Obj()
			if obj.Pkg() != nil {
				switch {
				case obj.Pkg().Path() == samplingPkg && (obj.Name() == "Sample" || obj.Name() == "SampleSet"):
					return true
				case obj.Pkg().Path() == indexPkg && obj.Name() == "Index":
					return true
				}
			}
			ty = u.Underlying()
		case *types.Pointer:
			ty = u.Elem()
		case *types.Slice:
			ty = u.Elem()
		case *types.Array:
			ty = u.Elem()
		case *types.Map:
			ty = u.Elem()
		default:
			return false
		}
	}
	return false
}

// tainted reports whether e carries raw sample data or a value derived
// from it.
func (t *teleTaint) tainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	e = ast.Unparen(e)
	// An expression that IS a raw container (directly, not a struct
	// holding one) is tainted wherever it appears.
	if tv, ok := t.pass.TypesInfo.Types[e]; ok && tv.Type != nil && directContainer(tv.Type) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := t.pass.TypesInfo.Uses[e].(*types.Var); ok {
			return t.vars[v]
		}
	case *ast.CallExpr:
		fn := calleeFunc(t.pass.TypesInfo, e)
		if isFuncNamed(fn, estimatorPkg, "RankCounting.Estimate") ||
			isFuncNamed(fn, estimatorPkg, "RankCounting.EstimateIndex") ||
			isFuncNamed(fn, corePkg, "Engine.EstimateOnly") {
			return true
		}
		// Conversions of tainted values stay tainted.
		if len(e.Args) == 1 {
			if tv, ok := t.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return t.tainted(e.Args[0])
			}
		}
	case *ast.BinaryExpr:
		return t.tainted(e.X) || t.tainted(e.Y)
	case *ast.UnaryExpr:
		return t.tainted(e.X)
	case *ast.StarExpr:
		return t.tainted(e.X)
	case *ast.IndexExpr:
		return t.tainted(e.X)
	case *ast.SliceExpr:
		return t.tainted(e.X)
	case *ast.SelectorExpr:
		// Field-sensitive: a selector is tainted only when its base is a
		// container itself or a value-tainted expression — never merely
		// because a sibling field of the base holds a container.
		return t.tainted(e.X)
	}
	return false
}

// checkSinks reports tainted expressions reaching telemetry recording
// positions.
func (t *teleTaint) checkSinks(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		fn := calleeFunc(t.pass.TypesInfo, n)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != telemetryPkg {
			return true
		}
		for name, argIdx := range telemetrySinkArgs {
			if !isFuncNamed(fn, telemetryPkg, name) {
				continue
			}
			for _, i := range argIdx {
				if i < len(n.Args) && t.tainted(n.Args[i]) {
					t.report(n.Args[i], name)
				}
			}
		}
	case *ast.CompositeLit:
		tv, ok := t.pass.TypesInfo.Types[n]
		if !ok || !isTelemetryLabelType(tv.Type) {
			return true
		}
		for _, elt := range n.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if t.tainted(val) {
				t.report(val, "Label")
			}
		}
	}
	return true
}

func (t *teleTaint) report(at ast.Expr, sink string) {
	t.pass.Reportf(at.Pos(), "raw per-node sample data or un-noised estimate flows into telemetry.%s: the metrics registry is scraped outside the privacy boundary, record only released aggregates, operational counts and constant tags", sink)
}

// isTelemetryLabelType reports whether ty (behind pointers) is
// telemetry.Label.
func isTelemetryLabelType(ty types.Type) bool {
	for {
		ptr, ok := ty.(*types.Pointer)
		if !ok {
			break
		}
		ty = ptr.Elem()
	}
	named, ok := ty.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == telemetryPkg && obj.Name() == "Label"
}
