package lint_test

import (
	"encoding/json"
	"strings"
	"testing"

	"privrange/internal/lint"
)

// loadModuleFacts loads the module and computes its fact store once per
// test that needs it (the analysistest package keeps its own copy; this
// one exercises the public surface directly).
func loadModuleFacts(t *testing.T) (*lint.Loader, *lint.FactStore) {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	facts, err := lint.ComputeFacts(pkgs, loader.Fset)
	if err != nil {
		t.Fatalf("ComputeFacts: %v", err)
	}
	return loader, facts
}

// TestFactsRoundTrip pins the serialization boundary: facts consumed by
// dependent packages must survive the encode/decode round trip byte-for
// -byte equivalent to what the producer computed, and the market
// package's facts must describe the real broker — the same graph
// DESIGN.md §13 documents.
func TestFactsRoundTrip(t *testing.T) {
	_, facts := loadModuleFacts(t)

	const marketPath = "privrange/internal/market"
	raw := facts.Encoded(marketPath)
	if len(raw) == 0 {
		t.Fatalf("no encoded facts for %s", marketPath)
	}

	// The encoded bytes are the interchange format: decode them with
	// plain encoding/json, independent of the store.
	var pf lint.PackageFacts
	if err := json.Unmarshal(raw, &pf); err != nil {
		t.Fatalf("decoding %s facts: %v", marketPath, err)
	}
	if pf.Package != marketPath {
		t.Fatalf("package = %q, want %q", pf.Package, marketPath)
	}

	// Broker.Buy: the purchase path write-locks recordMu for receipt
	// ordering and reaches the WAL fsync — both must be visible to
	// importers through the serialized summary.
	buy, ok := pf.Funcs["Broker.Buy"]
	if !ok {
		t.Fatalf("facts for %s lack Broker.Buy; have %d funcs", marketPath, len(pf.Funcs))
	}
	const recordMu = "privrange/internal/market.Broker.recordMu"
	if mode, ok := buy.Acquires[recordMu]; !ok || mode != lint.ModeExclusive {
		t.Errorf("Broker.Buy.Acquires[%s] = %q, %v; want exclusive", recordMu, mode, ok)
	}
	hasFsync := false
	for _, b := range buy.Blocks {
		if b.Op == "fsync" {
			hasFsync = true
			if b.Pos == "" {
				t.Errorf("fsync block op lost its position in the round trip")
			}
		}
	}
	if !hasFsync {
		t.Errorf("Broker.Buy.Blocks = %+v; want an fsync op (WAL sync on the buy path)", buy.Blocks)
	}

	// The commitMu → recordMu ordering edge (§13) must be serialized so
	// other packages can extend the global graph.
	foundEdge := false
	for _, e := range pf.Edges {
		if strings.HasSuffix(e.From, "Broker.commitMu") && strings.HasSuffix(e.To, "Broker.recordMu") {
			foundEdge = true
		}
	}
	if !foundEdge {
		t.Errorf("market edges lack commitMu→recordMu; got %d edges", len(pf.Edges))
	}

	// AllEdges must include the market edges (the global cycle check
	// feeds on it).
	inAll := false
	for _, e := range facts.AllEdges() {
		if strings.HasSuffix(e.From, "Broker.commitMu") && strings.HasSuffix(e.To, "Broker.recordMu") {
			inAll = true
		}
	}
	if !inAll {
		t.Errorf("AllEdges is missing the market commitMu→recordMu edge")
	}

	// ForPackage must hand out fresh decoded copies: a consumer mutating
	// its view must not corrupt the store (the property that makes facts
	// a serialization boundary, not shared memory).
	view1, ok := facts.ForPackage(marketPath)
	if !ok {
		t.Fatalf("ForPackage(%s) missing", marketPath)
	}
	delete(view1.Funcs, "Broker.Buy")
	view2, ok := facts.ForPackage(marketPath)
	if !ok {
		t.Fatalf("ForPackage(%s) missing on re-read", marketPath)
	}
	if _, ok := view2.Funcs["Broker.Buy"]; !ok {
		t.Errorf("mutating a decoded view leaked into the store: Broker.Buy vanished")
	}

	// Determinism hazards cross the boundary too: the market client sets
	// wall-clock deadlines, which detorder must see from other packages.
	do, ok := pf.Funcs["Client.Do"]
	if !ok || len(do.DetHazards) == 0 {
		t.Errorf("Client.Do det hazards missing from serialized facts (ok=%v, hazards=%v)", ok, do.DetHazards)
	}
}
