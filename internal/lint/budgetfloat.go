package lint

import (
	"go/ast"
	"go/token"
	"regexp"
)

// budgetName matches identifiers and field names that carry privacy
// budgets or accuracy parameters: epsilon/eps (ε, ε′), delta (δ, δ′),
// alpha (α, α′), and the accountant's budget/spent bookkeeping.
var budgetName = regexp.MustCompile(`(?i)(epsilon|(^|[^a-z])eps([^a-z]|$)|delta|alpha|budget|spent)`)

// BudgetFloat flags exact floating-point comparison of privacy-budget
// quantities.
var BudgetFloat = &Analyzer{
	Name: "budgetfloat",
	Doc: `flag == / != comparisons and compared differences on epsilon/delta/
budget-typed floats: budget arithmetic accumulates rounding error, so exact
equality silently mis-gates spends; compare against the literal 0 sentinel
only, and otherwise use the tolerance helpers (stats.ApproxEqual)`,
	Run: runBudgetFloat,
}

func runBudgetFloat(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ:
				if !budgetFloatOperand(pass, be.X) && !budgetFloatOperand(pass, be.Y) {
					return true
				}
				// `x == 0` is the conventional "unset/unlimited" sentinel
				// (Accountant.cap, composition counts); exact zero is
				// representable and intentional there.
				if isZeroLiteral(pass.TypesInfo, be.X) || isZeroLiteral(pass.TypesInfo, be.Y) {
					return true
				}
				pass.Reportf(be.OpPos, "exact %s on budget-typed floats: rounding error mis-gates budget decisions; use stats.ApproxEqual or an explicit tolerance", be.Op)
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				// Differencing two budgets inside a comparison
				// (cap-spent > price) hides catastrophic cancellation;
				// compare the sums directly or go through the
				// accountant's Remaining/tolerance helpers.
				for _, side := range []ast.Expr{be.X, be.Y} {
					sub, ok := ast.Unparen(side).(*ast.BinaryExpr)
					if !ok || sub.Op != token.SUB {
						continue
					}
					if !budgetFloatOperand(pass, sub.X) || !budgetFloatOperand(pass, sub.Y) {
						continue
					}
					other := be.Y
					if side == be.Y {
						other = be.X
					}
					if isZeroLiteral(pass.TypesInfo, other) {
						continue
					}
					pass.Reportf(sub.OpPos, "budget difference compared directly: subtraction of budget floats cancels catastrophically; rearrange to compare sums (spent+eps > cap) or use the accountant/tolerance helpers")
				}
			}
			return true
		})
	}
	return nil
}

// budgetFloatOperand reports whether e is a float-typed expression
// whose name (identifier, selector field, or call result assigned to
// such) marks it as a privacy budget or accuracy parameter.
func budgetFloatOperand(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil || !isFloat(tv.Type) {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		return budgetName.MatchString(e.Name)
	case *ast.SelectorExpr:
		return budgetName.MatchString(e.Sel.Name)
	case *ast.CallExpr:
		return budgetName.MatchString(calleeName(e))
	case *ast.BinaryExpr:
		return budgetFloatOperand(pass, e.X) || budgetFloatOperand(pass, e.Y)
	}
	return false
}
