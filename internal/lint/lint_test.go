package lint_test

import (
	"testing"

	"privrange/internal/lint"
	"privrange/internal/lint/analysistest"
)

// Each analyzer's golden fixture contains at least one case it must
// flag and one sanctioned shape it must stay silent on; the harness
// fails on any mismatch in either direction.

func TestNoiseSource(t *testing.T)     { analysistest.Run(t, lint.NoiseSource, "noisesource") }
func TestPrivacyBoundary(t *testing.T) { analysistest.Run(t, lint.PrivacyBoundary, "privacyboundary") }
func TestBudgetFloat(t *testing.T)     { analysistest.Run(t, lint.BudgetFloat, "budgetfloat") }
func TestBaseLock(t *testing.T)        { analysistest.Run(t, lint.BaseLock, "baselock") }
func TestErrWrap(t *testing.T)         { analysistest.Run(t, lint.ErrWrap, "errwrap") }
func TestBilling(t *testing.T)         { analysistest.Run(t, lint.Billing, "billing") }
func TestTelemetryTaint(t *testing.T)  { analysistest.Run(t, lint.TelemetryTaint, "telemetrytaint") }
func TestWALDebit(t *testing.T)        { analysistest.Run(t, lint.WALDebit, "waldebit") }
func TestLockOrder(t *testing.T)       { analysistest.Run(t, lint.LockOrder, "lockorder") }
func TestDetOrder(t *testing.T)        { analysistest.Run(t, lint.DetOrder, "detorder") }
func TestGoroutineScope(t *testing.T)  { analysistest.Run(t, lint.GoroutineScope, "goroutinescope") }
func TestAtomicGuard(t *testing.T)     { analysistest.Run(t, lint.AtomicGuard, "atomicguard") }

// TestSuiteCleanOnModule pins the invariant catalog to the tree: the
// full suite must report nothing on the module itself.
func TestSuiteCleanOnModule(t *testing.T) { analysistest.CleanModule(t) }
