package lint

import (
	"go/token"
	"strconv"
	"strings"
)

// Suppression support: a finding may be silenced at the offending line
// (or the line above it) with
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory — an allowlist entry without a recorded
// justification is unauditable, so a reasonless directive does NOT
// suppress and is itself reported. A directive that suppresses nothing
// is also reported (for the analyzers that actually ran): stale
// suppressions hide future regressions at exactly the lines humans have
// been trained to skip. Both classes are reported under the pseudo
// analyzer name "suppress", which cannot itself be suppressed.

// suppressAnalyzerName labels directive-hygiene findings.
const suppressAnalyzerName = "suppress"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      token.Pos
	used     bool
}

const allowPrefix = "//lint:allow"

// collectAllows parses every //lint:allow directive in pkg, returning
// the well-formed directives plus diagnostics for malformed ones.
func collectAllows(pkg *Package, fset *token.FileSet) ([]*allowDirective, []Diagnostic) {
	var allows []*allowDirective
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other //lint:allowX token
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: suppressAnalyzerName,
						Message:  "malformed suppression: need '//lint:allow <analyzer> <reason>' — the reason is mandatory and this directive suppresses nothing until it has one",
					})
					continue
				}
				p := fset.Position(c.Pos())
				allows = append(allows, &allowDirective{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					file:     p.Filename,
					line:     p.Line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return allows, bad
}

// applySuppressions filters diags through the directives: a finding
// from analyzer A at file:line is dropped when a directive for A sits
// on that line or the line above. Unused directives for analyzers in
// ran become findings themselves (scoping to ran keeps single-analyzer
// runs — the golden-test harness — from miscounting directives aimed at
// the rest of the suite).
func applySuppressions(diags []Diagnostic, allows []*allowDirective, ran map[string]bool, fset *token.FileSet) []Diagnostic {
	index := make(map[string]*allowDirective, len(allows))
	key := func(file string, line int, analyzer string) string {
		return file + "\x00" + analyzer + "\x00" + strconv.Itoa(line)
	}
	for _, a := range allows {
		index[key(a.file, a.line, a.analyzer)] = a
	}
	var out []Diagnostic
	for _, d := range diags {
		if d.Analyzer == suppressAnalyzerName {
			out = append(out, d)
			continue
		}
		p := fset.Position(d.Pos)
		matched := index[key(p.Filename, p.Line, d.Analyzer)]
		if matched == nil {
			matched = index[key(p.Filename, p.Line-1, d.Analyzer)]
		}
		if matched != nil {
			matched.used = true
			continue
		}
		out = append(out, d)
	}
	for _, a := range allows {
		if a.used || !ran[a.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      a.pos,
			Analyzer: suppressAnalyzerName,
			Message:  "unused suppression for " + a.analyzer + ": nothing on this or the next line triggers it — delete the directive (stale allowlists hide future regressions)",
		})
	}
	return out
}
