package lint

import (
	"go/ast"
	"go/types"
)

// PrivacyBoundary flags raw per-node sample data flowing into the
// market's released types without passing through the dp release path.
//
// Sources of taint:
//   - any expression whose type contains sampling.Sample/SampleSet or
//     index.Index — the raw rank-annotated per-node data the
//     (α,δ)-guarantee says must never be released (the columnar index
//     is the same data in flat form);
//   - the un-noised estimates: (estimator.RankCounting).Estimate, its
//     flat twin EstimateIndex, and (*core.Engine).EstimateOnly. All are
//     broker-internal by contract (EstimateOnly's doc says "It never
//     leaves the broker");
//   - the out slice of (estimator.RankCounting).EstimateIndexBatch,
//     which the call fills with un-noised estimates, and the dst tables
//     of the scatter forms (EstimateIndexScatter / EstimateScatter),
//     which hold un-noised per-node terms — rawer still.
//
// Sinks: field values of market.Response and market.Receipt, the two
// types that travel back to consumers.
//
// The sanctioned path is not special-cased: taint does not propagate
// through function calls, so a value that went through
// dp.Mechanism.Perturb or (*core.Engine).Answer comes out clean — the
// release boundary is exactly the set of dp/core release calls.
var PrivacyBoundary = &Analyzer{
	Name: "privacyboundary",
	Doc: `flag flows of raw per-node samples or un-noised estimates into
market.Response / market.Receipt fields: every released value must pass
through the dp release path (dp.Mechanism.Perturb via core.Engine.Answer)
and the accountant, or the (α,δ)/ε′ privacy contract is silently void`,
	Run: runPrivacyBoundary,
}

const (
	samplingPkg  = "privrange/internal/sampling"
	estimatorPkg = "privrange/internal/estimator"
	indexPkg     = "privrange/internal/index"
	corePkg      = "privrange/internal/core"
	marketPkg    = "privrange/internal/market"
	iotPkg       = "privrange/internal/iot"
)

func runPrivacyBoundary(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPrivacyFlows(pass, fd.Body)
		}
	}
	return nil
}

// checkPrivacyFlows runs the intraprocedural taint pass over one
// function body and reports tainted expressions reaching sink fields.
func checkPrivacyFlows(pass *Pass, body *ast.BlockStmt) {
	t := &taintState{pass: pass, vars: make(map[*types.Var]bool)}
	// Propagate until the tainted-variable set stops growing; bodies
	// are small, so the bound is a formality.
	for i := 0; i < 16; i++ {
		before := len(t.vars)
		ast.Inspect(body, t.propagate)
		if len(t.vars) == before {
			break
		}
	}
	ast.Inspect(body, t.checkSinks)
}

type taintState struct {
	pass *Pass
	vars map[*types.Var]bool
}

// propagate marks variables assigned from tainted expressions.
func (t *taintState) propagate(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.propagateAssign(n.Lhs, n.Rhs)
	case *ast.ValueSpec:
		var lhs []ast.Expr
		for _, name := range n.Names {
			lhs = append(lhs, name)
		}
		t.propagateAssign(lhs, n.Values)
	case *ast.RangeStmt:
		if n.X != nil && t.tainted(n.X) {
			t.markVar(n.Key)
			t.markVar(n.Value)
		}
	case *ast.CallExpr:
		// EstimateIndexBatch fills its out argument with un-noised
		// estimates: the slice is tainted from the call onward. The
		// scatter forms fill their dst argument with un-noised per-node
		// terms — rawer still (per-node granularity).
		fn := calleeFunc(t.pass.TypesInfo, n)
		if isFuncNamed(fn, estimatorPkg, "RankCounting.EstimateIndexBatch") && len(n.Args) == 3 {
			t.markVar(n.Args[2])
		}
		if (isFuncNamed(fn, estimatorPkg, "RankCounting.EstimateIndexScatter") ||
			isFuncNamed(fn, estimatorPkg, "RankCounting.EstimateScatter")) && len(n.Args) == 4 {
			t.markVar(n.Args[3])
		}
	}
	return true
}

func (t *taintState) propagateAssign(lhs, rhs []ast.Expr) {
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			if t.tainted(rhs[i]) {
				t.markVar(lhs[i])
			}
		}
	case len(rhs) == 1: // multi-value call / comma-ok
		if t.tainted(rhs[0]) {
			for _, l := range lhs {
				t.markVar(l)
			}
		}
	}
}

func (t *taintState) markVar(e ast.Expr) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := t.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = t.pass.TypesInfo.Uses[id]
	}
	if v, ok := obj.(*types.Var); ok {
		t.vars[v] = true
	}
}

// tainted reports whether e carries raw sample data or an un-noised
// estimate.
func (t *taintState) tainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	e = ast.Unparen(e)
	// Type-level taint: raw sample containers are tainted wherever
	// they appear.
	if tv, ok := t.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		if typeContains(tv.Type, samplingPkg, "Sample") || typeContains(tv.Type, samplingPkg, "SampleSet") ||
			typeContains(tv.Type, indexPkg, "Index") {
			return true
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := t.pass.TypesInfo.Uses[e].(*types.Var); ok {
			return t.vars[v]
		}
	case *ast.CallExpr:
		fn := calleeFunc(t.pass.TypesInfo, e)
		if isFuncNamed(fn, estimatorPkg, "RankCounting.Estimate") ||
			isFuncNamed(fn, estimatorPkg, "RankCounting.EstimateIndex") ||
			isFuncNamed(fn, corePkg, "Engine.EstimateOnly") {
			return true
		}
		// Conversions of tainted values stay tainted.
		if len(e.Args) == 1 {
			if tv, ok := t.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return t.tainted(e.Args[0])
			}
		}
	case *ast.BinaryExpr:
		return t.tainted(e.X) || t.tainted(e.Y)
	case *ast.UnaryExpr:
		return t.tainted(e.X)
	case *ast.StarExpr:
		return t.tainted(e.X)
	case *ast.IndexExpr:
		return t.tainted(e.X)
	case *ast.SliceExpr:
		return t.tainted(e.X)
	case *ast.SelectorExpr:
		// A field of a tainted value is tainted.
		return t.tainted(e.X)
	}
	return false
}

// checkSinks reports tainted expressions assigned into Response or
// Receipt fields, via composite literal or field write.
func (t *taintState) checkSinks(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CompositeLit:
		tv, ok := t.pass.TypesInfo.Types[n]
		if !ok || !isMarketReleaseType(tv.Type) {
			return true
		}
		for _, elt := range n.Elts {
			val := elt
			field := ""
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
				if id, ok := kv.Key.(*ast.Ident); ok {
					field = id.Name
				}
			}
			if t.tainted(val) {
				t.report(val, field, tv.Type)
			}
		}
	case *ast.AssignStmt:
		for i, l := range n.Lhs {
			sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			tv, ok := t.pass.TypesInfo.Types[sel.X]
			if !ok || !isMarketReleaseType(tv.Type) {
				continue
			}
			rhs := n.Rhs[0]
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			}
			if t.tainted(rhs) {
				t.report(rhs, sel.Sel.Name, tv.Type)
			}
		}
	}
	return true
}

func (t *taintState) report(at ast.Expr, field string, sink types.Type) {
	where := sink.String()
	if field != "" {
		where += "." + field
	}
	t.pass.Reportf(at.Pos(), "raw per-node sample data or un-noised estimate flows into %s: released values must pass through the dp release path (core.Engine.Answer / dp.Mechanism.Perturb) and the accountant", where)
}

// isMarketReleaseType reports whether t (possibly behind pointers) is
// market.Response or market.Receipt.
func isMarketReleaseType(t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != marketPkg {
		return false
	}
	return obj.Name() == "Response" || obj.Name() == "Receipt"
}
