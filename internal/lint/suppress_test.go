package lint_test

import (
	"strings"
	"testing"

	"privrange/internal/lint"
)

// TestSuppression exercises the //lint:allow machinery end to end on
// the suppress fixture: a reasoned directive silences its finding, a
// reasonless one is malformed and silences nothing, and a directive
// that matches nothing is itself a finding.
func TestSuppression(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir("testdata/src/suppress", "privrange/internal/lint/testdata/src/suppress")
	if err != nil {
		t.Fatalf("loading suppress fixture: %v", err)
	}
	diags, err := lint.Run([]*lint.Analyzer{lint.GoroutineScope}, []*lint.Package{pkg}, loader.Fset, lint.RunConfig{})
	if err != nil {
		t.Fatalf("running goroutinescope: %v", err)
	}

	type found struct{ analyzer, needle string }
	wants := []found{
		{"suppress", "malformed suppression"},
		{"goroutinescope", "not analyzable"}, // spawnMissingReason: reasonless directive does not suppress
		{"goroutinescope", "not analyzable"}, // spawnBare
		{"suppress", "unused suppression for goroutinescope"},
	}
	if len(diags) != len(wants) {
		for _, d := range diags {
			t.Logf("  %s: %s [%s]", loader.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(wants))
	}
	// Order-insensitive claim: each want must be matched by a distinct
	// diagnostic.
	used := make([]bool, len(diags))
	for _, w := range wants {
		matched := false
		for i, d := range diags {
			if used[i] || d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.needle) {
				continue
			}
			used[i] = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("no diagnostic from %q containing %q", w.analyzer, w.needle)
		}
	}

	// The suppressed spawn (spawnAllowed) must not appear: exactly two
	// goroutinescope findings survive out of the three spawns.
	goCount := 0
	for _, d := range diags {
		if d.Analyzer == "goroutinescope" {
			goCount++
		}
	}
	if goCount != 2 {
		t.Errorf("goroutinescope findings = %d, want 2 (spawnAllowed must be suppressed)", goCount)
	}

	// Scoping: when goroutinescope did NOT run, its directives must not
	// be reported as unused (single-analyzer runs would otherwise
	// miscount directives aimed at the rest of the suite). Malformed
	// directives are hygiene findings independent of any analyzer, so
	// the reasonless one still surfaces.
	diags2, err := lint.Run([]*lint.Analyzer{lint.AtomicGuard}, []*lint.Package{pkg}, loader.Fset, lint.RunConfig{})
	if err != nil {
		t.Fatalf("running atomicguard: %v", err)
	}
	for _, d := range diags2 {
		if strings.Contains(d.Message, "unused suppression") {
			t.Errorf("directive for an analyzer that did not run reported unused: %s", d.Message)
		}
	}
	if len(diags2) != 1 || !strings.Contains(diags2[0].Message, "malformed suppression") {
		t.Errorf("atomicguard-only run: got %d diags, want exactly the malformed-directive finding", len(diags2))
	}
}
