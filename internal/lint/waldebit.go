package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WALDebit mechanizes the durability work's journal-before-ack
// invariant: every mutation of the trading books — a wallet grant,
// debit or refund, a ledger receipt, an ε spend — must be paired with a
// write-ahead-log append in the same function, so no money or budget
// can move without a durable record. The historical bug class is a new
// call site (a facade method, a protocol handler) that mutates the
// wallet or ledger directly and silently bypasses the WAL: the books
// look right until the first crash, after which recovery resurrects or
// vanishes money.
//
// Mechanization: a function that calls one of the book mutators
// (market.Wallets.Deposit/debit/refund, market.Ledger.Record,
// dp.Accountant.Spend) must also show journaling evidence — a call to a
// journal*-named helper or to a method on the WAL type. Two layers are
// exempt: internal/dp (the accountant IS the mutated state) and
// internal/core (the engine charges the accountant inside the release
// path; the broker journals that spend at the market layer, where the
// sale's identity lives). Replay-side restore helpers (restore*) are
// deliberately NOT in the mutator list: recovery is the one writer
// that works from the log instead of ahead of it.
var WALDebit = &Analyzer{
	Name: "waldebit",
	Doc: `require a write-ahead-log append alongside every trading-book
mutation: wallet deposits/debits/refunds, ledger receipts and ε spends
must be journaled before the operation is acknowledged — a call site
that skips the WAL makes money and budget vanish (or resurrect) on the
next crash`,
	Run: runWALDebit,
}

// dpPkg names the accountant's package; marketPkg and corePkg come
// from privacyboundary.go.
const dpPkg = "privrange/internal/dp"

// walMutators are the typed calls that move money, receipts or ε.
var walMutators = []struct{ pkg, name string }{
	{marketPkg, "Wallets.Deposit"},
	{marketPkg, "Wallets.debit"},
	{marketPkg, "Wallets.refund"},
	{marketPkg, "Ledger.Record"},
	{dpPkg, "Accountant.Spend"},
}

func runWALDebit(pass *Pass) error {
	switch pass.Pkg.Path() {
	case dpPkg, corePkg:
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWALDebit(pass, fd)
		}
	}
	return nil
}

func checkWALDebit(pass *Pass, fd *ast.FuncDecl) {
	journaled := funcJournals(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		for _, m := range walMutators {
			if !isFuncNamed(fn, m.pkg, m.name) {
				continue
			}
			if journaled {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s calls %s without journaling: trading-book mutations must append a WAL record in the same function (journal*/WAL methods) so the operation is durable before it is acknowledged",
				fd.Name.Name, m.name)
			return true
		}
		return true
	})
}

// funcJournals reports whether fd shows journaling evidence: a call to
// a journal*-named function or method, or to any method on a type
// named WAL.
func funcJournals(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if strings.HasPrefix(calleeName(call), "journal") {
			found = true
			return false
		}
		if fn := calleeFunc(pass.TypesInfo, call); methodRecvTypeName(fn) == "WAL" {
			found = true
			return false
		}
		return true
	})
	return found
}

// methodRecvTypeName returns the name of fn's receiver type ("" for
// nil, plain functions and unnamed receivers), looking through one
// pointer.
func methodRecvTypeName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
