package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// rngPackage is the one package allowed to own raw randomness: every
// noise draw in the system must come from its seeded, splittable
// streams so experiments replay bit-for-bit and the per-query noise
// streams stay deterministic.
const rngPackage = "privrange/internal/stats"

// forbiddenRandImports are the entropy sources whose use outside
// rngPackage voids both determinism (replay) and the privacy
// accounting (an unseeded draw is an untracked noise source).
var forbiddenRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// seedSinkName matches functions and methods that accept a seed or
// construct a random stream; feeding them wall-clock time destroys
// reproducibility.
var seedSinkName = regexp.MustCompile(`(?i)(rng|seed|stream|source|split|child)`)

// NoiseSource forbids raw entropy outside internal/stats.
var NoiseSource = &Analyzer{
	Name: "noisesource",
	Doc: `forbid math/rand, math/rand/v2 and crypto/rand outside internal/stats,
and forbid time.Now()-derived values flowing into RNG/seed/stream constructors
anywhere: all randomness must come from stats.NewRNG / stats.NewStream so the
(α,δ)-guarantee's noise is deterministic, budget-tracked and replayable`,
	Run: runNoiseSource,
}

func runNoiseSource(pass *Pass) error {
	inStats := pass.Pkg.Path() == rngPackage
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if forbiddenRandImports[path] && !inStats {
				pass.Reportf(imp.Pos(), "import of %s outside %s: draw randomness from stats.NewRNG/stats.NewStream so noise stays deterministic and budget-tracked", path, rngPackage)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if name == "" || !seedSinkName.MatchString(name) {
				return true
			}
			for _, arg := range call.Args {
				if pos, found := findTimeNow(pass, arg); found {
					pass.Reportf(pos, "time.Now()-derived seed passed to %s: wall-clock seeding breaks deterministic replay; derive seeds from config or stats.NewStream", name)
				}
			}
			return true
		})
	}
	return nil
}

// calleeName returns the syntactic name of the function being called
// ("NewRNG", "Seed", ...), or "" for indirect calls.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// findTimeNow reports the position of a time.Now call nested anywhere
// in e.
func findTimeNow(pass *Pass, e ast.Expr) (pos token.Pos, found bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass.TypesInfo, call); isFuncNamed(fn, "time", "Now") {
			pos = call.Pos()
			found = true
			return false
		}
		return true
	})
	return pos, found
}
