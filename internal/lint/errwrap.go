package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strconv"
	"strings"
)

// ErrWrap protects the repo's errors.Is contracts (iot.ErrPartialRound,
// optimize.ErrInfeasible, core.ErrUnachievable, pricing.ErrArbitrage,
// market.ErrRemote, ...):
//
//  1. a sentinel error formatted with anything but %w severs the chain
//     callers branch on (core.Engine.tolerable, degradation-aware
//     brokers);
//  2. any error value formatted with %v/%s/%q silently drops whatever
//     sentinels it wraps — sever deliberately with err.Error() or
//     propagate with %w;
//  3. re-spelling a sentinel's message through a fresh errors.New or
//     fmt.Errorf forks its identity: errors.Is matches the variable,
//     not the text.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: `require %w when formatting sentinel errors (and any error value) into
fmt.Errorf, and forbid re-defining a sentinel's message text: the repo's
errors.Is contracts (ErrPartialRound and friends) must survive wrapping`,
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			switch {
			case isFuncNamed(fn, "fmt", "Errorf"):
				checkErrorf(pass, call)
			case isFuncNamed(fn, "errors", "New"):
				checkSentinelRedefinition(pass, call)
			}
			return true
		})
	}
	return nil
}

// checkErrorf verifies verb/argument pairing on one fmt.Errorf call.
func checkErrorf(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	format, ok := constantString(pass, call.Args[0])
	if ok {
		checkSentinelMessage(pass, call.Args[0].Pos(), format)
	}
	args := call.Args[1:]
	if !ok || len(args) == 0 {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range args {
		verb := byte(0)
		if i < len(verbs) {
			verb = verbs[i]
		}
		if verb == 'w' {
			continue
		}
		if obj, isSentinel := isSentinelError(pass.TypesInfo, arg); isSentinel {
			pass.Reportf(arg.Pos(), "sentinel %s formatted with %%%c: errors.Is callers lose the sentinel; wrap with %%w", obj.Name(), printableVerb(verb))
			continue
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil && isErrorType(tv.Type) {
			pass.Reportf(arg.Pos(), "error value formatted with %%%c drops any wrapped sentinels; propagate with %%w, or sever explicitly with err.Error()", printableVerb(verb))
		}
	}
}

// checkSentinelRedefinition flags errors.New calls that re-spell an
// existing sentinel's message anywhere but the sentinel's own
// declaration.
func checkSentinelRedefinition(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	msg, ok := constantString(pass, call.Args[0])
	if !ok {
		return
	}
	sent, exists := pass.Sentinels[msg]
	if !exists || sent.Pos == call.Pos() {
		return
	}
	pass.Reportf(call.Pos(), "errors.New re-defines the message of sentinel %s: errors.Is matches the variable, not the text; reuse the sentinel", sent.Qualified)
}

// checkSentinelMessage flags fmt.Errorf formats that duplicate a
// sentinel's exact message instead of wrapping the sentinel.
func checkSentinelMessage(pass *Pass, pos token.Pos, format string) {
	if sent, ok := pass.Sentinels[format]; ok && !strings.Contains(format, "%") {
		pass.Reportf(pos, "message duplicates sentinel %s: wrap the sentinel with %%w instead of re-spelling its text", sent.Qualified)
	}
}

// constantString evaluates e as a constant string.
func constantString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return "", false
	}
	return s, true
}

// formatVerbs returns the verb letter consumed by each successive
// argument of a Printf-style format. Explicit argument indexes ("%[1]v")
// are rare enough here that the scanner bails and reports no verbs,
// leaving such calls unchecked rather than mis-paired.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Skip flags, width, precision; a '*' consumes an argument slot.
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil // explicit index: give up on pairing
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.IndexByte("+-# 0.0123456789", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}

func printableVerb(v byte) byte {
	if v == 0 {
		return '?'
	}
	return v
}
