// Package lint implements privlint, the repo's in-tree static-analysis
// suite. It mirrors the golang.org/x/tools/go/analysis architecture —
// small single-purpose Analyzers running over type-checked packages —
// but is built entirely on the standard library (go/ast, go/parser,
// go/types) so the module stays dependency-free and the linter builds
// offline with nothing but the Go toolchain.
//
// Each analyzer mechanizes one invariant that DESIGN.md previously
// enforced by prose alone; DESIGN.md §8 catalogs the mapping from
// analyzer to invariant to the paper/PR section it protects. The
// cmd/privlint multichecker runs the whole suite and `make lint` wires
// it into the pre-merge gate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// An Analyzer describes one lint pass: a named, documented invariant
// check executed against a single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -list output. It
	// must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the analyzer against one package, reporting
	// violations through the pass. A returned error aborts the whole
	// lint run (reserved for internal failures, not findings).
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a type-checked package and the
// module-wide facts shared by the suite.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token positions for every loaded package, targets and
	// dependencies alike.
	Fset *token.FileSet
	// Files holds the package's parsed non-test sources.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records the type-checker's findings for Files.
	TypesInfo *types.Info
	// Sentinels maps each package-level `var ErrX = errors.New(msg)`
	// declared anywhere in the module to its sentinel description,
	// keyed by message text. Analyzers use it to spot re-definitions.
	Sentinels map[string]Sentinel
	// Facts holds the serialized cross-package summaries (lock
	// acquisitions, determinism hazards, atomic fields) of every package
	// the runner has processed, including the target's import closure.
	// May be nil for callers that opt out of the facts layer.
	Facts *FactStore
	// Loaded is the loader's view of the target package (source files,
	// directory, type info) — the same value handed to ComputeFacts, so
	// analyzers and the facts layer always analyze identical input.
	Loaded *Package

	report func(Diagnostic)
}

// Sentinel describes one package-level sentinel error declaration.
type Sentinel struct {
	// Qualified is the pkgpath-qualified variable name, e.g.
	// "privrange/internal/iot.ErrPartialRound".
	Qualified string
	// Message is the errors.New argument.
	Message string
	// Pos locates the canonical errors.New call so the definition site
	// itself is never flagged as a re-definition.
	Pos token.Pos
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// inspectStack walks every file in the pass, calling fn with each node
// and the stack of its ancestors (outermost first, not including the
// node itself). Returning false prunes the subtree.
func (p *Pass) inspectStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// indirect calls, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isFuncNamed reports whether fn is the named function or method of the
// given package path, matching either "Name" or "Recv.Name".
func isFuncNamed(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		recvName := ""
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recvName = named.Obj().Name()
		}
		return recvName+"."+fn.Name() == name
	}
	return fn.Name() == name
}

// typeContains reports whether t transitively contains the named type
// pkgPath.name, looking through pointers, slices, arrays, maps, chans
// and struct fields (but not function signatures).
func typeContains(t types.Type, pkgPath, name string) bool {
	seen := make(map[types.Type]bool)
	var walk func(t types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch t := t.(type) {
		case *types.Named:
			obj := t.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name {
				return true
			}
			return walk(t.Underlying())
		case *types.Pointer:
			return walk(t.Elem())
		case *types.Slice:
			return walk(t.Elem())
		case *types.Array:
			return walk(t.Elem())
		case *types.Map:
			return walk(t.Key()) || walk(t.Elem())
		case *types.Chan:
			return walk(t.Elem())
		case *types.Struct:
			for i := 0; i < t.NumFields(); i++ {
				if walk(t.Field(i).Type()) {
					return true
				}
			}
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				if walk(t.At(i).Type()) {
					return true
				}
			}
		}
		return false
	}
	return walk(t)
}

// isFloat reports whether t is a floating-point type (or an untyped
// float constant type).
func isFloat(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isZeroLiteral reports whether e is the literal constant 0 (any
// numeric spelling), the conventional sentinel for "unset/disabled"
// that tolerance rules deliberately exempt.
func isZeroLiteral(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// errorInterface is the universe error type.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is exactly error or implements it.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface) || types.Implements(types.NewPointer(t), errorInterface)
}

// sentinelVarName matches the naming convention for package-level
// sentinel errors (ErrPartialRound, ErrInfeasible, ...).
var sentinelVarName = regexp.MustCompile(`^Err[A-Z]`)

// isSentinelError reports whether e is a reference to a package-level
// sentinel error variable following the Err* convention.
func isSentinelError(info *types.Info, e ast.Expr) (types.Object, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil, false
	}
	obj := info.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !sentinelVarName.MatchString(v.Name()) {
		return nil, false
	}
	// Package-level: parent scope is the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return nil, false
	}
	if !isErrorType(v.Type()) {
		return nil, false
	}
	return v, true
}
