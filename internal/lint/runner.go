package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
)

// CollectSentinels scans packages for the repo's sentinel-error
// convention — package-level `var ErrX = errors.New("msg")` — and
// returns the module-wide table keyed by message text. The errwrap
// analyzer uses it to catch re-definitions that would silently fork an
// errors.Is identity.
func CollectSentinels(pkgs []*Package) map[string]Sentinel {
	out := make(map[string]Sentinel)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != len(vs.Values) {
						continue
					}
					for i, name := range vs.Names {
						if !sentinelVarName.MatchString(name.Name) {
							continue
						}
						call, ok := vs.Values[i].(*ast.CallExpr)
						if !ok || len(call.Args) != 1 {
							continue
						}
						if fn := calleeFunc(pkg.Info, call); !isFuncNamed(fn, "errors", "New") {
							continue
						}
						lit, ok := call.Args[0].(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						msg, err := strconv.Unquote(lit.Value)
						if err != nil {
							continue
						}
						out[msg] = Sentinel{
							Qualified: pkg.PkgPath + "." + name.Name,
							Message:   msg,
							Pos:       call.Pos(),
						}
					}
				}
			}
		}
	}
	return out
}

// RunConfig carries the module-wide state shared by every pass in a
// run.
type RunConfig struct {
	// Sentinels should cover the whole module (CollectSentinels over all
	// loaded packages), not just the packages being linted, so
	// cross-package sentinel re-definitions are caught.
	Sentinels map[string]Sentinel
	// Facts holds the serialized per-package summaries (ComputeFacts over
	// the module). May be nil: fact-consuming analyzers then see only
	// their own package, which is how the loader bootstraps.
	Facts *FactStore
}

// Run executes every analyzer over every package, applies //lint:allow
// suppressions, and returns the surviving diagnostics sorted by
// position. Suppression hygiene findings (malformed or unused
// directives) come back under the pseudo-analyzer "suppress".
func Run(analyzers []*Analyzer, pkgs []*Package, fset *token.FileSet, cfg RunConfig) ([]Diagnostic, error) {
	var diags []Diagnostic
	ran := make(map[string]bool, len(analyzers))
	var allows []*allowDirective
	for _, pkg := range pkgs {
		pkgAllows, bad := collectAllows(pkg, fset)
		allows = append(allows, pkgAllows...)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			ran[a.Name] = true
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Sentinels: cfg.Sentinels,
				Facts:     cfg.Facts,
				Loaded:    pkg,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	diags = applySuppressions(diags, allows, ran, fset)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full privlint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicGuard,
		BaseLock,
		Billing,
		BudgetFloat,
		DetOrder,
		ErrWrap,
		GoroutineScope,
		LockOrder,
		NoiseSource,
		PrivacyBoundary,
		TelemetryTaint,
		WALDebit,
	}
}
