package lint

import (
	"go/ast"
)

// BaseLock mechanizes the DESIGN.md §7 footgun: iot.Network.Base()
// returns the base station WITHOUT the network's lock, so the result
// must not outlive the expression it appears in or cross into another
// goroutine.
//
// Allowed:
//
//	nw.Base().TotalN()            (immediate chained call)
//
// Flagged:
//
//	b := nw.Base()                (escapes into a variable)
//	return nw.Base()              (escapes the caller)
//	f(nw.Base())                  (escapes into a callee)
//	go func() { nw.Base()... }()  (goroutine boundary)
var BaseLock = &Analyzer{
	Name: "baselock",
	Doc: `flag iot.Network.Base() calls whose *BaseStation escapes the calling
expression or sits inside a goroutine/closure: Base bypasses the network's
lock, so any retained or concurrent use is a data race — use Snapshot()`,
	Run: runBaseLock,
}

func runBaseLock(pass *Pass) error {
	pass.inspectStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if !isFuncNamed(fn, iotPkg, "Network.Base") {
			return true
		}
		// Inside a closure or go statement the unlocked base station is
		// one scheduling decision away from racing the network writer.
		for _, anc := range stack {
			switch anc.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				pass.Reportf(call.Pos(), "Network.Base() inside a goroutine/closure: the base station is not locked, racing any concurrent EnsureRate/IngestRound/HeartbeatRound; use Network.Snapshot()")
				return true
			}
		}
		// Immediate chained method call — nw.Base().Foo(...) — consumes
		// the pointer without retaining it.
		if len(stack) >= 2 {
			if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.X == call {
				if outer, ok := stack[len(stack)-2].(*ast.CallExpr); ok && outer.Fun == sel {
					return true
				}
			}
		}
		pass.Reportf(call.Pos(), "Network.Base() result escapes the calling expression: the base station bypasses the network's lock (DESIGN.md §7); call through it inline or use Network.Snapshot()")
		return true
	})
	return nil
}
