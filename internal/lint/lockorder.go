package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder infers the repo's lock-acquisition graph from syntactic
// Lock/RLock/Unlock pairing plus cross-package function summaries
// (facts), and enforces three rules on it:
//
//  1. the global "may acquire B while holding A" graph must stay a DAG
//     — a cycle is a potential deadlock even if no test provokes it;
//  2. a goroutine holding an RWMutex read side must never attempt the
//     write side of the same lock (read-to-write upgrade), and sync
//     locks are not reentrant;
//  3. while holding a lock in the configured no-block set (the
//     market's receipt-ordering recordMu, the engine's release mutex)
//     the code must not perform an operation from the configured
//     blocking set: fsync, net.Conn reads/writes, channel sends,
//     time.Sleep — directly or through any summarized callee.
//
// The analysis is deliberately syntactic and flow-approximate: bodies
// are walked in source order, deferred unlocks keep their lock held to
// function end, function literals (including go statements — the
// spawner typically blocks on the pool while still holding its locks)
// are walked under the spawner's held set, and interface calls are not
// resolved. That makes it conservative in the direction that matters:
// it can report an edge that dynamic instances never realize, but a
// statically visible inversion cannot hide.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: `infer the module-wide lock-acquisition graph (via cross-package facts)
and report ordering cycles, RLock-to-Lock upgrades, re-entrant acquisitions,
and blocking operations (fsync, net.Conn I/O, channel sends) performed while
holding a no-block lock such as market recordMu or the engine release mutex`,
	Run: runLockOrder,
}

// lockOrderNoBlock is the configurable set of locks that must never be
// held across a blocking operation: they sit on ack/release fast paths
// where a stalled fsync or socket would freeze every concurrent sale or
// answer.
var lockOrderNoBlock = map[string]bool{
	"privrange/internal/market.Broker.recordMu": true,
	"privrange/internal/core.Engine.releaseMu":  true,
	// Fixture hook: the golden tests exercise the rule without touching
	// real broker state.
	"privrange/internal/lint/testdata/src/lockorder.Journal.ackMu": true,
}

// heldLock is one entry of the walker's currently-held set.
type heldLock struct {
	id   string
	mode LockMode
	expr string // rendered receiver expression, for instance matching
	pos  token.Pos
}

type lockDiag struct {
	pos token.Pos
	msg string
}

// lockSummary is one function's transitive locking behavior.
type lockSummary struct {
	acquires map[string]LockMode
	blocks   []BlockOp
}

// lockResult is everything analyzeLocks learns about one package.
type lockResult struct {
	summaries map[string]*lockSummary
	edges     []LockEdge
	edgePos   map[string]token.Pos // edge key -> local position
	diags     []lockDiag
}

type lockAnalysis struct {
	pkg        *Package
	fset       *token.FileSet
	facts      *FactStore
	decls      map[string]*ast.FuncDecl
	keyOf      map[*types.Func]string
	res        *lockResult
	inProgress map[string]bool
	edgeSeen   map[string]bool
	// lastRecv carries the rendered receiver expression from
	// syncLockCall to the acquire that consumes it.
	lastRecv string
}

// analyzeLocks walks every function in pkg once, producing per-function
// summaries, the package's lock-order edges, and local diagnostics.
// Facts supply the summaries of imported packages' exported functions.
// Both the facts layer (to serialize summaries) and the lockorder pass
// (to report) run this; it is deterministic, so they always agree.
func analyzeLocks(pkg *Package, fset *token.FileSet, facts *FactStore) *lockResult {
	la := &lockAnalysis{
		pkg:   pkg,
		fset:  fset,
		facts: facts,
		decls: make(map[string]*ast.FuncDecl),
		keyOf: make(map[*types.Func]string),
		res: &lockResult{
			summaries: make(map[string]*lockSummary),
			edgePos:   make(map[string]token.Pos),
		},
		inProgress: make(map[string]bool),
		edgeSeen:   make(map[string]bool),
	}
	var keys []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			key := funcDeclKey(fd)
			la.decls[key] = fd
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				la.keyOf[obj] = key
			}
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		la.summarize(key)
	}
	sort.Slice(la.res.diags, func(i, j int) bool { return la.res.diags[i].pos < la.res.diags[j].pos })
	return la.res
}

// funcDeclKey renders "Name" or "Recv.Name" for a declaration.
func funcDeclKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// summarize computes (memoized) the transitive lock summary of one
// function. Recursive call cycles bottom out with the empty summary.
func (la *lockAnalysis) summarize(key string) *lockSummary {
	if s, ok := la.res.summaries[key]; ok {
		return s
	}
	if la.inProgress[key] {
		return &lockSummary{acquires: map[string]LockMode{}}
	}
	la.inProgress[key] = true
	sum := &lockSummary{acquires: map[string]LockMode{}}
	if fd := la.decls[key]; fd != nil && fd.Body != nil {
		w := &lockWalker{la: la, sum: sum, key: key}
		w.walkStmt(fd.Body)
	}
	delete(la.inProgress, key)
	la.res.summaries[key] = sum
	return sum
}

func (la *lockAnalysis) diag(pos token.Pos, format string, args ...any) {
	la.res.diags = append(la.res.diags, lockDiag{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// lockWalker walks one function body in source order, tracking the
// currently-held lock set.
type lockWalker struct {
	la        *lockAnalysis
	sum       *lockSummary
	key       string
	held      []heldLock
	blockSeen map[string]bool
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.walkStmt(st)
		}
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e)
		}
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		w.walkStmt(s.Body)
		w.walkStmt(s.Else)
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		w.walkStmt(s.Post)
		w.walkStmt(s.Body)
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		w.walkStmt(s.Body)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Tag)
		w.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkStmt(s.Assign)
		w.walkStmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.walkExpr(e)
		}
		for _, st := range s.Body {
			w.walkStmt(st)
		}
	case *ast.SelectStmt:
		w.walkSelect(s)
	case *ast.CommClause:
		w.walkStmt(s.Comm)
		for _, st := range s.Body {
			w.walkStmt(st)
		}
	case *ast.SendStmt:
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
		w.blockOp("channel send", s.Arrow)
	case *ast.DeferStmt:
		// A deferred unlock keeps its lock held through function end —
		// exactly how the linear walk models "never removed". Other
		// deferred calls are walked inline; approximate, but a deferred
		// call runs under whatever locks remain held at return, which the
		// current held set approximates from below.
		if _, _, op, ok := w.la.syncLockCall(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return
		}
		w.walkExpr(s.Call)
	case *ast.GoStmt:
		// Conservative: the spawned body is walked under the spawner's
		// held set. Every pool in this repo joins (wg.Wait) while the
		// spawner still holds its locks, so goroutine-side acquisitions
		// genuinely order against spawner-held locks.
		w.walkExpr(s.Call)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// walkSelect treats the communication guards of a select without a
// default clause as blocking; with a default the select cannot block.
func (w *lockWalker) walkSelect(s *ast.SelectStmt) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm != nil {
			if hasDefault {
				// Non-blocking attempt: walk sub-expressions but record no
				// blocking op.
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					w.walkExpr(comm.Chan)
					w.walkExpr(comm.Value)
				case *ast.ExprStmt:
					w.walkExpr(comm.X)
				case *ast.AssignStmt:
					for _, e := range comm.Rhs {
						w.walkExpr(e)
					}
				}
			} else {
				w.walkStmt(cc.Comm)
			}
		}
		for _, st := range cc.Body {
			w.walkStmt(st)
		}
	}
}

func (w *lockWalker) walkExpr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.walkCall(e)
	case *ast.FuncLit:
		// A literal that is merely created (stored, passed) is still
		// walked under the current held set: callbacks in this repo run
		// synchronously under their caller (scatter, forEach).
		w.walkStmt(e.Body)
	case *ast.ParenExpr:
		w.walkExpr(e.X)
	case *ast.SelectorExpr:
		w.walkExpr(e.X)
	case *ast.BinaryExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Y)
	case *ast.UnaryExpr:
		w.walkExpr(e.X)
	case *ast.StarExpr:
		w.walkExpr(e.X)
	case *ast.IndexExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Index)
	case *ast.IndexListExpr:
		w.walkExpr(e.X)
	case *ast.SliceExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Low)
		w.walkExpr(e.High)
		w.walkExpr(e.Max)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.walkExpr(elt)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value)
	}
}

func (w *lockWalker) walkCall(call *ast.CallExpr) {
	// Immediately-invoked function literal: inline under current held.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.walkExpr(a)
		}
		w.walkStmt(lit.Body)
		return
	}
	if id, mode, op, ok := w.la.syncLockCall(call); ok {
		switch op {
		case "Lock", "RLock", "TryLock", "TryRLock":
			w.acquire(id, mode, call.Pos())
		case "Unlock", "RUnlock":
			w.release(id)
		}
		return
	}
	// Arguments and nested calls first (evaluation order).
	if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.walkExpr(fun.X)
	}
	for _, a := range call.Args {
		w.walkExpr(a)
	}
	fn := calleeFunc(w.la.pkg.Info, call)
	if fn == nil {
		return
	}
	if op := directBlockingOp(fn); op != "" {
		w.blockOp(op, call.Pos())
		return
	}
	// Same-package callee: fold its transitive summary in.
	if key, ok := w.la.keyOf[fn]; ok {
		w.applySummary(key, w.la.summarize(key), call.Pos())
		return
	}
	// Cross-package callee: consult serialized facts.
	if fn.Pkg() != nil && w.la.facts != nil {
		if pf, ok := w.la.facts.ForPackage(fn.Pkg().Path()); ok {
			name := factFuncName(fn)
			if ff, ok := pf.Funcs[name]; ok {
				sum := &lockSummary{acquires: map[string]LockMode{}}
				for id, mode := range ff.Acquires {
					sum.acquires[id] = mode
				}
				sum.blocks = ff.Blocks
				w.applySummary(fn.Pkg().Path()+"."+name, sum, call.Pos())
			}
		}
	}
}

// factFuncName renders a *types.Func the way facts key it:
// "Name" or "Recv.Name".
func factFuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if named, isNamed := derefNamed(sig.Recv().Type()); isNamed {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// acquire processes a direct Lock/RLock event.
func (w *lockWalker) acquire(id string, mode LockMode, pos token.Pos) {
	exprStr := w.la.lastRecv
	for _, h := range w.held {
		if h.id == id {
			// Only syntactically identical receiver expressions are claimed
			// to be the same instance; distinct instances of the same lock
			// class are a legitimate (if delicate) pattern and produce no
			// self edge.
			if h.expr == exprStr || h.expr == "" || exprStr == "" {
				if h.mode == ModeShared && mode == ModeExclusive {
					w.la.diag(pos, "write-lock of %s while its read lock is held: RLock→Lock upgrade self-deadlocks (RWMutex writers wait out all readers)", shortLock(id))
				} else {
					w.la.diag(pos, "re-acquiring %s while already held: sync mutexes are not reentrant, this self-deadlocks", shortLock(id))
				}
				return
			}
			continue
		}
		w.addEdge(h, id, mode, pos)
	}
	w.held = append(w.held, heldLock{id: id, mode: mode, expr: exprStr, pos: pos})
	w.noteAcquire(id, mode)
}

func (w *lockWalker) release(id string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].id == id {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// noteAcquire folds an acquisition into the function summary, keeping
// the strongest mode.
func (w *lockWalker) noteAcquire(id string, mode LockMode) {
	if prev, ok := w.sum.acquires[id]; !ok || (prev == ModeShared && mode == ModeExclusive) {
		w.sum.acquires[id] = mode
	}
}

// applySummary folds a callee's transitive summary into the caller at a
// call site: ordering edges from every held lock to every callee
// acquisition, re-entrancy checks, blocking checks, summary
// propagation.
func (w *lockWalker) applySummary(calleeName string, sum *lockSummary, pos token.Pos) {
	ids := make([]string, 0, len(sum.acquires))
	for id := range sum.acquires {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		mode := sum.acquires[id]
		for _, h := range w.held {
			if h.id == id {
				if h.mode == ModeShared && mode == ModeExclusive {
					w.la.diag(pos, "call to %s may write-lock %s while its read lock is held: RLock→Lock upgrade self-deadlocks", shortName(calleeName), shortLock(id))
				} else {
					w.la.diag(pos, "call to %s may re-acquire %s already held here: sync mutexes are not reentrant", shortName(calleeName), shortLock(id))
				}
				continue
			}
			w.addEdge(h, id, mode, pos)
		}
		w.noteAcquire(id, mode)
	}
	// One diagnostic per op class per call site: a callee with five
	// fsync sites is one problem here, not five.
	checkedOps := make(map[string]bool)
	for _, b := range sum.blocks {
		if !checkedOps[b.Op] {
			checkedOps[b.Op] = true
			w.checkBlocking(b.Op, pos, " (via "+shortName(calleeName)+")")
		}
		w.addBlock(b)
	}
}

// blockOp records a directly-performed blocking operation.
func (w *lockWalker) blockOp(op string, pos token.Pos) {
	w.checkBlocking(op, pos, "")
	w.addBlock(BlockOp{Op: op, Pos: w.la.fset.Position(pos).String()})
}

// addBlock appends a blocking op to the summary, deduplicating by
// operation and site so summaries stay bounded along call chains.
func (w *lockWalker) addBlock(b BlockOp) {
	if w.blockSeen == nil {
		w.blockSeen = make(map[string]bool)
	}
	key := b.Op + "\x00" + b.Pos
	if w.blockSeen[key] {
		return
	}
	w.blockSeen[key] = true
	w.sum.blocks = append(w.sum.blocks, b)
}

func (w *lockWalker) checkBlocking(op string, pos token.Pos, via string) {
	for _, h := range w.held {
		if lockOrderNoBlock[h.id] {
			w.la.diag(pos, "%s%s while holding %s: no-block locks sit on the ack/release fast path and must never wait on I/O or channel peers", op, via, shortLock(h.id))
		}
	}
}

func (w *lockWalker) addEdge(from heldLock, to string, toMode LockMode, pos token.Pos) {
	key := from.id + "→" + to
	if w.la.edgeSeen[key] {
		return
	}
	w.la.edgeSeen[key] = true
	w.la.res.edges = append(w.la.res.edges, LockEdge{
		From:     from.id,
		FromMode: from.mode,
		To:       to,
		ToMode:   toMode,
		Pos:      w.la.fset.Position(pos).String(),
	})
	w.la.res.edgePos[key] = pos
}

// syncLockCall reports whether call is a sync.Mutex / sync.RWMutex
// lock-class method call, resolving the lock's identity.
func (la *lockAnalysis) syncLockCall(call *ast.CallExpr) (id string, mode LockMode, op string, ok bool) {
	fn := calleeFunc(la.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	switch fn.Name() {
	case "Lock", "TryLock", "Unlock":
		mode = ModeExclusive
	case "RLock", "TryRLock", "RUnlock":
		mode = ModeShared
	default:
		return "", "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", "", false
	}
	recvName := ""
	if named, okN := derefNamed(sig.Recv().Type()); okN {
		recvName = named.Obj().Name()
	}
	if recvName != "Mutex" && recvName != "RWMutex" {
		return "", "", "", false
	}
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", "", false
	}
	id, expr := la.lockIdentity(sel.X)
	la.lastRecv = expr
	return id, mode, fn.Name(), id != ""
}

// lockIdentity names the lock a receiver expression denotes:
// "pkg.Type.field" for struct fields, "pkg.var" for package-level
// variables, "pkg.<local>.var" for locals, "pkg.Type.Mutex" for a named
// type embedding a mutex. The rendered expression comes back too, for
// instance discrimination.
func (la *lockAnalysis) lockIdentity(recv ast.Expr) (id, expr string) {
	recv = ast.Unparen(recv)
	expr = types.ExprString(recv)
	// Embedded mutex: the receiver is not itself a sync type.
	if tv, ok := la.pkg.Info.Types[recv]; ok && tv.Type != nil {
		if named, okN := derefNamed(tv.Type); okN {
			if named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
				return qualifyNamed(named) + ".Mutex", expr
			}
		}
	}
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		if sel, ok := la.pkg.Info.Selections[r]; ok {
			if field, okF := sel.Obj().(*types.Var); okF {
				if named, okN := derefNamed(sel.Recv()); okN {
					return qualifyNamed(named) + "." + field.Name(), expr
				}
			}
		}
		if obj, ok := la.pkg.Info.Uses[r.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name(), expr
		}
	case *ast.Ident:
		if obj, ok := la.pkg.Info.Uses[r].(*types.Var); ok && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name(), expr
			}
			return obj.Pkg().Path() + ".<local>." + obj.Name(), expr
		}
	}
	// Positional fallback so exotic receivers (locks[i]) still track.
	return la.pkg.PkgPath + ".<expr>." + expr, expr
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

func qualifyNamed(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// directBlockingOp classifies calls in the configured blocking set.
func directBlockingOp(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "os":
		if isFuncNamed(fn, "os", "File.Sync") {
			return "fsync"
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "net":
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			switch fn.Name() {
			case "Write":
				return "net.Conn write"
			case "Read":
				return "net.Conn read"
			}
		}
	}
	return ""
}

// shortLock trims the module prefix for readable diagnostics.
func shortLock(id string) string {
	return strings.TrimPrefix(id, "privrange/internal/")
}

func shortName(name string) string {
	return strings.TrimPrefix(name, "privrange/internal/")
}

// adjEdge is one outgoing edge in the cycle-detection graph.
type adjEdge struct {
	to  string
	pos string
}

func runLockOrder(pass *Pass) error {
	res := analyzeLocks(pass.Loaded, pass.Fset, pass.Facts)
	for _, d := range res.diags {
		pass.Reportf(d.pos, "%s", d.msg)
	}

	// Global cycle detection: this package's edges plus every serialized
	// edge from the facts store (the import closure). When facts already
	// include this package (the normal multichecker configuration), own
	// edges duplicate serialized ones; parallel edges are harmless to the
	// path search.
	adj := make(map[string][]adjEdge)
	if pass.Facts != nil {
		for _, e := range pass.Facts.AllEdges() {
			adj[e.From] = append(adj[e.From], adjEdge{to: e.To, pos: e.Pos})
		}
	}
	for _, e := range res.edges {
		adj[e.From] = append(adj[e.From], adjEdge{to: e.To, pos: e.Pos})
	}
	for from := range adj {
		es := adj[from]
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
		adj[from] = es
	}

	// A cycle is reported only from a package contributing one of its
	// edges — otherwise every importer would re-report the same cycle.
	reported := make(map[string]bool)
	for _, e := range res.edges {
		path := lockPath(adj, e.To, e.From)
		if path == nil {
			continue
		}
		cycle := append([]string{e.From, e.To}, path...)
		key := canonicalCycle(cycle)
		if reported[key] {
			continue
		}
		reported[key] = true
		pass.Reportf(res.edgePos[e.From+"→"+e.To],
			"lock-order cycle: %s — a concurrent pair of these acquisition chains deadlocks; break the cycle or narrow a critical section",
			renderCycle(cycle))
	}
	return nil
}

// lockPath finds a path from start to goal in the edge graph, returning
// the node sequence after start (ending in goal), or nil. BFS over a
// sorted adjacency keeps the reported witness deterministic.
func lockPath(adj map[string][]adjEdge, start, goal string) []string {
	type qItem struct {
		node string
		path []string
	}
	seen := map[string]bool{start: true}
	queue := []qItem{{node: start}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, e := range adj[it.node] {
			if e.to == goal {
				return append(append([]string(nil), it.path...), goal)
			}
			if seen[e.to] {
				continue
			}
			seen[e.to] = true
			queue = append(queue, qItem{node: e.to, path: append(append([]string(nil), it.path...), e.to)})
		}
	}
	return nil
}

func canonicalCycle(nodes []string) string {
	set := make(map[string]bool)
	for _, n := range nodes {
		set[n] = true
	}
	uniq := make([]string, 0, len(set))
	for n := range set {
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	return strings.Join(uniq, "|")
}

func renderCycle(nodes []string) string {
	short := make([]string, 0, len(nodes)+1)
	for _, n := range nodes {
		short = append(short, shortLock(n))
	}
	short = append(short, shortLock(nodes[0])) // close the loop visually
	return strings.Join(short, " → ")
}
