package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DetOrder guards the bit-identical release invariant (DESIGN.md §6 and
// §11): a released answer must be a deterministic function of the
// collected samples and the noise stream, across shard counts and
// across runs. In the functions reachable from the configured
// deterministic-path roots (core answer/reduce, estimator scatter and
// flat kernels, shard router, index build) it flags:
//
//   - `range` over a map — Go randomizes iteration order — unless the
//     loop follows the sorted-snapshot discipline (only order-neutral
//     effects: map-index stores, integer accumulation, deletes, and
//     appends whose target is sorted before use later in the same
//     function);
//   - time.Now / time.Since — wall-clock reads leak scheduling into
//     answers;
//   - math/rand top-level draws — the global source is shared and
//     seed-racy; deterministic paths must draw from the engine's
//     keyed noise stream.
//
// Hazards propagate: a root calling a same-package helper inherits the
// helper's hazards, and calls into other packages consult the callee's
// serialized DetHazards facts. Telemetry and iot collection are
// deliberately outside the propagation set — observability timestamps
// do not feed answer bytes.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc: `flag nondeterminism (unordered map ranges, wall-clock reads, global
math/rand draws, order-dependent accumulation) in the deterministic
release-and-reduce paths, with a sorted-snapshot allowlist`,
	Run: runDetOrder,
}

// detRoots names the entry points of the deterministic release paths,
// per package. Reporting is scoped to functions reachable from these
// within their package; everything else in the package may freely read
// clocks.
var detRoots = map[string][]string{
	"privrange/internal/core": {
		"Engine.Answer", "Engine.AnswerCtx", "Engine.AnswerBatch", "Engine.EstimateOnly",
		"Engine.AnswerBatchSerial", "Engine.AnswerBatchSerialCtx",
		"Engine.answer", "Engine.answerBatch", "Engine.answerBatchSerial",
		"rankEstimate", "rankEstimateBatch", "rankEstimateSharded", "scatterBlock",
	},
	"privrange/internal/estimator": {
		"BasicCounting.Estimate", "BasicCounting.EstimateIndex", "BasicCounting.EstimateIndexBatch",
		"RankCounting.Estimate", "RankCounting.EstimateIndex", "RankCounting.EstimateIndexBatch",
		"RankCounting.EstimateScatter", "RankCounting.EstimateIndexScatter",
	},
	"privrange/internal/shard": {
		"Cluster.Snapshot", "Ring.Owner",
	},
	"privrange/internal/index": {
		"Build",
	},
	// Fixture hook for the golden tests.
	"privrange/internal/lint/testdata/src/detorder": {
		"Release",
	},
}

// detExcludedPackages are never consulted for cross-package hazard
// propagation: their wall-clock use is observability, not answer
// content.
var detExcludedPackages = map[string]bool{
	"privrange/internal/telemetry": true,
	"privrange/internal/iot":       true,
}

type detHazard struct {
	pos  token.Pos
	desc string
}

type detCallHazard struct {
	pos     token.Pos
	callee  string
	hazards []string
}

// detResult is everything analyzeDet learns about one package.
type detResult struct {
	// summaries: transitive hazard strings per function key, for facts.
	summaries map[string][]string
	// own: hazards detected directly in each function's body.
	own map[string][]detHazard
	// calls: cross-package call sites whose callee facts carry hazards.
	calls map[string][]detCallHazard
	// sameCalls: same-package callees, for reachability and propagation.
	sameCalls map[string][]string
}

type detAnalysis struct {
	pkg   *Package
	fset  *token.FileSet
	facts *FactStore
	res   *detResult
	memo  map[string][]string
	busy  map[string]bool
}

// analyzeDet scans every function in pkg for determinism hazards and
// computes transitive summaries (same-package closure plus imported
// DetHazards facts). Shared by the facts layer and the detorder pass.
func analyzeDet(pkg *Package, fset *token.FileSet, facts *FactStore) *detResult {
	da := &detAnalysis{
		pkg:   pkg,
		fset:  fset,
		facts: facts,
		res: &detResult{
			summaries: make(map[string][]string),
			own:       make(map[string][]detHazard),
			calls:     make(map[string][]detCallHazard),
			sameCalls: make(map[string][]string),
		},
		memo: make(map[string][]string),
		busy: make(map[string]bool),
	}
	var keys []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := funcDeclKey(fd)
			keys = append(keys, key)
			da.scanFunc(key, fd)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		da.res.summaries[key] = da.summary(key)
	}
	return da.res
}

// scanFunc records the direct hazards, cross-package hazard calls, and
// same-package callees of one function.
func (da *detAnalysis) scanFunc(key string, fd *ast.FuncDecl) {
	info := da.pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if !da.rangeAllowed(n, fd) {
						da.res.own[key] = append(da.res.own[key], detHazard{
							pos: n.Pos(),
							desc: fmt.Sprintf("range over map %s: Go randomizes map iteration order; take a sorted snapshot of the keys first",
								types.ExprString(n.X)),
						})
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			if desc := detHazardCall(fn); desc != "" {
				da.res.own[key] = append(da.res.own[key], detHazard{pos: n.Pos(), desc: desc})
				return true
			}
			if fn.Pkg() == nil {
				return true
			}
			if fn.Pkg() == da.pkg.Types {
				if fd2 := da.findDecl(fn); fd2 != "" {
					da.res.sameCalls[key] = append(da.res.sameCalls[key], fd2)
				}
				return true
			}
			// Cross-package: consult serialized facts unless excluded.
			path := fn.Pkg().Path()
			if detExcludedPackages[path] || da.facts == nil {
				return true
			}
			if pf, ok := da.facts.ForPackage(path); ok {
				name := factFuncName(fn)
				if ff, ok := pf.Funcs[name]; ok && len(ff.DetHazards) > 0 {
					da.res.calls[key] = append(da.res.calls[key], detCallHazard{
						pos:     n.Pos(),
						callee:  path + "." + name,
						hazards: ff.DetHazards,
					})
				}
			}
		}
		return true
	})
}

// findDecl maps a same-package *types.Func back to its summary key.
func (da *detAnalysis) findDecl(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if named, ok := derefNamed(sig.Recv().Type()); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
		return ""
	}
	return fn.Name()
}

// detHazardCall classifies direct hazard calls.
func detHazardCall(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name() + ": wall-clock reads make released bytes depend on scheduling"
		}
	case "math/rand", "math/rand/v2":
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
			return "math/rand." + fn.Name() + ": the global source is shared and seed-racy; draw from the engine's keyed noise stream"
		}
	}
	return ""
}

// summary computes (memoized) the transitive hazard list of one
// function: its own hazards, its cross-package call hazards, and the
// summaries of its same-package callees.
func (da *detAnalysis) summary(key string) []string {
	if s, ok := da.memo[key]; ok {
		return s
	}
	if da.busy[key] {
		return nil
	}
	da.busy[key] = true
	seen := make(map[string]bool)
	var out []string
	add := func(h string) {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	for _, h := range da.res.own[key] {
		add(da.fset.Position(h.pos).String() + ": " + h.desc)
	}
	for _, c := range da.res.calls[key] {
		for _, h := range c.hazards {
			add("via " + shortName(c.callee) + ": " + h)
		}
	}
	for _, callee := range da.res.sameCalls[key] {
		for _, h := range da.summary(callee) {
			add(h)
		}
	}
	delete(da.busy, key)
	sort.Strings(out)
	da.memo[key] = out
	return out
}

// rangeAllowed implements the sorted-snapshot allowlist for a map
// range: the body may only have order-neutral effects, and any slice it
// appends to must be sorted later in the same function before use.
func (da *detAnalysis) rangeAllowed(rs *ast.RangeStmt, fd *ast.FuncDecl) bool {
	var needSort []*types.Var
	if !da.rangeBodyOK(rs.Body.List, &needSort) {
		return false
	}
	for _, v := range needSort {
		if !da.sortedAfter(v, rs.End(), fd) {
			return false
		}
	}
	return true
}

// rangeBodyOK checks that statements inside a map-range body are
// order-neutral. Appends to outer slices are collected into needSort
// for the sorted-later check.
func (da *detAnalysis) rangeBodyOK(stmts []ast.Stmt, needSort *[]*types.Var) bool {
	info := da.pkg.Info
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if i < len(s.Rhs) {
					rhs = s.Rhs[i]
				}
				if rhs != nil && !da.exprOrderNeutral(rhs) {
					return false
				}
				switch {
				case s.Tok == token.DEFINE:
					// Locals scoped to the iteration are order-free.
				case isMapIndexStore(info, lhs):
					// m[k] = v commutes across iterations (same-key overwrite
					// requires the key to repeat, impossible in one range).
				case s.Tok == token.ASSIGN && isAppendTo(info, lhs, rhs):
					if v := exprVar(info, lhs); v != nil {
						*needSort = append(*needSort, v)
					} else {
						return false
					}
				case isIntegerCompound(info, s.Tok, lhs):
					// x += n on integers is associative and commutative.
				default:
					return false
				}
			}
		case *ast.IncDecStmt:
			if !isIntegerExpr(info, s.X) {
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltinCall(info, call, "delete") {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || !da.exprOrderNeutral(s.Cond) {
				return false
			}
			if !da.rangeBodyOK(s.Body.List, needSort) {
				return false
			}
			if s.Else != nil {
				eb, ok := s.Else.(*ast.BlockStmt)
				if !ok || !da.rangeBodyOK(eb.List, needSort) {
					return false
				}
			}
		case *ast.BlockStmt:
			if !da.rangeBodyOK(s.List, needSort) {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE && s.Tok != token.BREAK {
				return false
			}
		case *ast.DeclStmt:
			// Local declarations introduce iteration-scoped state.
		default:
			return false
		}
	}
	return true
}

// exprOrderNeutral: the expression performs no calls other than
// len/cap/min/max (pure reads commute across iterations).
func (da *detAnalysis) exprOrderNeutral(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if call, isCall := n.(*ast.CallExpr); isCall {
			if !isBuiltinCall(da.pkg.Info, call, "len", "cap", "min", "max", "append") {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

func isMapIndexStore(info *types.Info, lhs ast.Expr) bool {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[ix.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isAppendTo reports whether rhs is append(lhs, ...).
func isAppendTo(info *types.Info, lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || !isBuiltinCall(info, call, "append") || len(call.Args) == 0 {
		return false
	}
	lv := exprVar(info, lhs)
	av := exprVar(info, call.Args[0])
	return lv != nil && lv == av
}

func exprVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.ObjectOf(id).(*types.Var)
	return v
}

func isIntegerCompound(info *types.Info, tok token.Token, lhs ast.Expr) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	return isIntegerExpr(info, lhs)
}

func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return false
	}
	for _, n := range names {
		if id.Name == n {
			return true
		}
	}
	return false
}

// sortedAfter reports whether v is passed to a sort.*/slices.Sort* call
// after pos within fd.
func (da *detAnalysis) sortedAfter(v *types.Var, pos token.Pos, fd *ast.FuncDecl) bool {
	info := da.pkg.Info
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkgPath := fn.Pkg().Path()
		if pkgPath != "sort" && pkgPath != "slices" {
			return true
		}
		if !strings.HasPrefix(fn.Name(), "Sort") {
			switch fn.Name() {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Stable":
			default:
				return true
			}
		}
		if exprVar(info, call.Args[0]) == v {
			found = true
		}
		return true
	})
	return found
}

func runDetOrder(pass *Pass) error {
	roots := detRoots[pass.Loaded.PkgPath]
	if len(roots) == 0 {
		return nil
	}
	res := analyzeDet(pass.Loaded, pass.Fset, pass.Facts)

	// Reachability: roots plus their same-package call closure.
	reachable := make(map[string]bool)
	var visit func(key string)
	visit = func(key string) {
		if reachable[key] {
			return
		}
		reachable[key] = true
		for _, callee := range res.sameCalls[key] {
			visit(callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}

	keys := make([]string, 0, len(reachable))
	for k := range reachable {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, h := range res.own[key] {
			pass.Reportf(h.pos, "deterministic release path (%s): %s", key, h.desc)
		}
		for _, c := range res.calls[key] {
			pass.Reportf(c.pos, "deterministic release path (%s): call into %s carries determinism hazards: %s",
				key, shortName(c.callee), strings.Join(c.hazards, "; "))
		}
	}
	return nil
}
