// Package goroutinescope holds golden cases for the goroutinescope
// analyzer.
package goroutinescope

import (
	"net"
	"net/http"
)

// fireAndForget spawns a function value the analyzer cannot resolve to
// a body, so the lifetime is unprovable.
func fireAndForget(work func()) {
	go work() // want `not analyzable`
}

// perRequest spawns one goroutine per item with no join and no
// cancellation: the unbounded spawn-per-request pattern.
func perRequest(jobs []int) {
	for range jobs {
		go func() { // want `not provably joined`
			_ = len(jobs)
		}()
	}
}

// serveUnjoined mirrors the accept-loop leak the telemetry ops server
// had: the spawn outlives any Close.
func serveUnjoined(srv *http.Server, ln net.Listener) {
	go func() { // want `not provably joined`
		_ = srv.Serve(ln)
	}()
}
