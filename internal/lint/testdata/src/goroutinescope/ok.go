package goroutinescope

import (
	"context"
	"sync"
)

// pooled is the sanctioned fanout shape: every spawn calls Done on a
// WaitGroup the same function Wait()s.
func pooled(items []int) int {
	var wg sync.WaitGroup
	out := make([]int, len(items))
	for i := range items {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			out[slot] = slot * 2
		}(i)
	}
	wg.Wait()
	total := 0
	for _, v := range out {
		total += v
	}
	return total
}

// Worker is the long-lived shape: the spawn's Done pairs with the Wait
// in Close, and the drainer terminates when Close closes quit.
type Worker struct {
	wg   sync.WaitGroup
	quit chan struct{}
}

func (w *Worker) Start() {
	w.wg.Add(1)
	go w.loop()
}

func (w *Worker) loop() {
	defer w.wg.Done()
	<-w.quit
}

// SpawnDrainer ranges over a channel the package close()s, so the
// goroutine terminates at shutdown.
func (w *Worker) SpawnDrainer() {
	go func() {
		for range w.quit {
		}
	}()
}

func (w *Worker) Close() {
	close(w.quit)
	w.wg.Wait()
}

// watcher is context-cancellable: the loop selects on ctx.Done().
func watcher(ctx context.Context, tick <-chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}
