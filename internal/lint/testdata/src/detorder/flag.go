// Package detorder holds golden cases for the detorder analyzer.
// Release is the configured deterministic-path root (see detRoots in
// detorder.go); everything reachable from it within the package is on
// the deterministic release path.
package detorder

import (
	"math/rand"
	"time"

	"privrange/internal/market"
)

// Release mirrors the engine's release-and-reduce shape. The unsorted
// map range feeds floating-point accumulation, whose result depends on
// iteration order.
func Release(samples map[int]float64, c *market.Client) float64 {
	total := 0.0
	for _, v := range samples { // want `range over map`
		total += v
	}
	if _, err := c.Do(market.Request{}); err != nil { // want `carries determinism hazards`
		return 0
	}
	return total + skew() + draw() + tally(samples) + float64(len(groupCount(samples)))
}

// skew is reachable from Release, so its wall-clock read lands in
// released bytes.
func skew() float64 {
	return float64(time.Now().UnixNano() % 2) // want `time\.Now`
}

// draw pulls from the shared, seed-racy global source.
func draw() float64 {
	return rand.Float64() // want `math/rand\.Float64`
}
