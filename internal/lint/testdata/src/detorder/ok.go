package detorder

import (
	"sort"
	"time"
)

// Observe is not reachable from Release: wall-clock telemetry outside
// the deterministic path is not a finding.
func Observe() int64 {
	return time.Now().UnixNano()
}

// tally follows the sorted-snapshot discipline: the map range only
// collects keys (append target sorted before use) and counts, and the
// order-sensitive float accumulation runs over the sorted slice.
func tally(samples map[int]float64) float64 {
	keys := make([]int, 0, len(samples))
	n := 0
	for k := range samples {
		keys = append(keys, k)
		n++
	}
	sort.Ints(keys)
	var total float64
	for _, k := range keys {
		total += samples[k]
	}
	return total + float64(n)
}

// groupCount only performs order-neutral effects inside the map range:
// integer increments of map-index slots commute across iterations.
func groupCount(samples map[int]float64) map[int]int {
	out := make(map[int]int, 4)
	for k := range samples {
		out[k%4]++
	}
	return out
}
