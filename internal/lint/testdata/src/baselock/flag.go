// Package baselock holds golden cases for the baselock analyzer.
package baselock

import "privrange/internal/iot"

// escapesReturn hands the unlocked base station to the caller.
func escapesReturn(nw *iot.Network) *iot.BaseStation {
	return nw.Base() // want `escapes the calling expression`
}

// escapesVar retains the unlocked base station in a local.
func escapesVar(nw *iot.Network) int {
	b := nw.Base() // want `escapes the calling expression`
	return b.TotalN()
}

// crossesGoroutine reads the base station concurrently with whatever
// the network writer is doing.
func crossesGoroutine(nw *iot.Network, out chan<- int) {
	go func() {
		out <- nw.Base().TotalN() // want `inside a goroutine/closure`
	}()
}
