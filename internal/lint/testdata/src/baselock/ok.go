package baselock

import "privrange/internal/iot"

// inlineChain consumes the pointer inside the calling expression, the
// one sanctioned shape.
func inlineChain(nw *iot.Network) int {
	return nw.Base().TotalN()
}
