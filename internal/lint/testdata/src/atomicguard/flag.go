// Package atomicguard holds golden cases for the atomicguard analyzer.
package atomicguard

import "sync/atomic"

type counter struct {
	n    uint64
	hits atomic.Uint64
}

// record declares the intent: n is an atomic field.
func (c *counter) record() {
	atomic.AddUint64(&c.n, 1)
}

// peek reads the same field without sync/atomic — the data race the
// race detector only sees when a test interleaves the two.
func (c *counter) peek() uint64 {
	return c.n // want `mixed plain/atomic access`
}

// observe takes a typed atomic by value; the copies happen at its call
// sites below.
func observe(v atomic.Uint64) uint64 {
	return v.Load()
}

func (c *counter) report() uint64 {
	return observe(c.hits) // want `copied by value`
}

func (c *counter) stash() {
	h := c.hits // want `copied by value`
	_ = &h
}

// total iterates a typed-atomic slice by value, forking every element.
func total(buckets []atomic.Uint64) uint64 {
	var t uint64
	for _, b := range buckets { // want `range copies`
		t += b.Load()
	}
	return t
}
