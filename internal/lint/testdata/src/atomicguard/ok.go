package atomicguard

import "sync/atomic"

type meter struct {
	calls atomic.Uint64
	flags uint64
}

// Method access is the sanctioned use of a typed atomic.
func (m *meter) bump() {
	m.calls.Add(1)
}

func (m *meter) read() uint64 {
	return m.calls.Load()
}

// Passing the atomic by pointer shares state instead of forking it.
func drain(c *atomic.Uint64) uint64 {
	return c.Swap(0)
}

func (m *meter) flush() uint64 {
	return drain(&m.calls)
}

// flags is accessed through sync/atomic everywhere: no mixed access.
func (m *meter) mark() {
	atomic.AddUint64(&m.flags, 1)
}

func (m *meter) flagged() uint64 {
	return atomic.LoadUint64(&m.flags)
}

// Indexing by position and calling through the element avoids copies.
func zero(buckets []atomic.Uint64) {
	for i := range buckets {
		buckets[i].Store(0)
	}
}
