package billing

import "privrange/internal/wire"

// transmitDeferred registers billing immediately after the encode
// succeeds, so no later exit path — including the down branch — can
// skip it. This is the shape iot.Network.transmit uses.
func (nw *meter) transmitDeferred(m wire.Message, down bool) error {
	data, err := wire.Encode(m)
	if err != nil {
		return err
	}
	attempts := 1
	defer func() {
		nw.cost.Bytes += int64(len(data)) * int64(attempts)
	}()
	if down {
		return nil
	}
	return nil
}
