// Package billing holds golden cases for the billing analyzer.
package billing

import "privrange/internal/wire"

// meter mimics a transport's cost report.
type meter struct {
	cost struct {
		Bytes int64
	}
}

// transmitUnbilled encodes but never accounts the bytes.
func (nw *meter) transmitUnbilled(m wire.Message) error {
	_, err := wire.Encode(m) // want `encodes a wire message but never bills`
	return err
}

// transmitLeaky bills, but an early return slips between the encode
// and the billing site — the historical under-billing bug.
func (nw *meter) transmitLeaky(m wire.Message, down bool) error {
	data, err := wire.Encode(m)
	if err != nil {
		return err
	}
	if down {
		return nil // want `return before the attempt is billed`
	}
	nw.cost.Bytes += int64(len(data))
	return nil
}
