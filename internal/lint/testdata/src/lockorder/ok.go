package lockorder

import "sync"

// pool acquires a strictly before b everywhere: the graph stays a DAG.
type pool struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pool) first() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pool) second() int {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
	return 0
}

// Distinct instances of one lock class may nest: only syntactically
// identical receivers are claimed to be the same lock.
type node struct {
	mu sync.Mutex
	n  int
}

func merge(x, y *node) int {
	x.mu.Lock()
	y.mu.Lock()
	total := x.n + y.n
	y.mu.Unlock()
	x.mu.Unlock()
	return total
}

// refresh reads then writes in sequence — releasing the read side
// before taking the write side is the sanctioned non-upgrade shape.
func (g *gauge) refresh(v int) int {
	g.mu.RLock()
	old := g.v
	g.mu.RUnlock()
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
	return old
}

// ackThenSync releases the no-block lock before touching the disk.
func (j *Journal) ackThenSync() {
	j.ackMu.Lock()
	j.ackMu.Unlock()
	_ = j.f.Sync()
}
