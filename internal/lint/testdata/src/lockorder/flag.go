// Package lockorder holds golden flag cases for the lockorder analyzer.
package lockorder

import (
	"os"
	"sync"

	"privrange/internal/market"
)

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// lockAB and lockBA together close an ordering cycle: a goroutine in
// each function deadlocks against the other.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle`
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

type gauge struct {
	mu sync.RWMutex
	v  int
}

// upgrade attempts the classic RLock-to-Lock upgrade, which
// self-deadlocks: the writer waits for all readers, including itself.
func (g *gauge) upgrade() {
	g.mu.RLock()
	g.mu.Lock() // want `upgrade self-deadlocks`
	g.mu.Unlock()
	g.mu.RUnlock()
}

// double re-acquires a lock it already holds.
func (g *gauge) double() {
	g.mu.Lock()
	g.mu.Lock() // want `not reentrant`
	g.mu.Unlock()
	g.mu.Unlock()
}

func (g *gauge) get() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// sum calls a helper that re-acquires the lock sum already holds.
func (g *gauge) sum() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.get() // want `may re-acquire`
}

// Journal.ackMu is registered in the analyzer's no-block set, standing
// in for the market's recordMu on its ack fast path.
type Journal struct {
	ackMu sync.Mutex
	f     *os.File
}

// ackDirect performs blocking operations while holding the no-block
// lock directly.
func (j *Journal) ackDirect(ch chan int) {
	j.ackMu.Lock()
	_ = j.f.Sync() // want `fsync while holding`
	ch <- 1        // want `channel send while holding`
	j.ackMu.Unlock()
}

func (j *Journal) flush() {
	_ = j.f.Sync()
}

// ackViaHelper reaches the fsync through a same-package callee's
// summary.
func (j *Journal) ackViaHelper() {
	j.ackMu.Lock()
	defer j.ackMu.Unlock()
	j.flush() // want `fsync \(via Journal\.flush\) while holding`
}

// resellUnderAck reaches an fsync through the serialized facts of a
// real module package: market.Broker.Buy syncs the WAL.
func (j *Journal) resellUnderAck(b *market.Broker) {
	j.ackMu.Lock()
	defer j.ackMu.Unlock()
	_, _ = b.Buy(market.Request{}) // want `fsync \(via market\.Broker\.Buy\) while holding`
}
