// Package waldebit holds golden cases for the waldebit analyzer.
package waldebit

import (
	"privrange/internal/dp"
	"privrange/internal/market"
)

// grantUnjournaled credits a wallet with no WAL record: the grant
// vanishes on the next crash.
func grantUnjournaled(w *market.Wallets) error {
	return w.Deposit("alice", 5) // want `without journaling`
}

// recordUnjournaled appends a receipt the log never sees.
func recordUnjournaled(l *market.Ledger) {
	l.Record(market.Receipt{Customer: "alice", Dataset: "ozone"}) // want `without journaling`
}

// spendUnjournaled charges privacy budget that recovery cannot rebuild.
func spendUnjournaled(a *dp.Accountant) error {
	return a.Spend(0.25) // want `without journaling`
}
