package waldebit

import (
	"privrange/internal/dp"
	"privrange/internal/market"
)

// books mimics a broker-like owner of the durable state.
type books struct {
	wal *market.WAL
}

// journalGrant stands in for the broker's journal helpers; the analyzer
// accepts any journal*-named call as evidence.
func (b *books) journalGrant(customer string, amount float64) error { return nil }

// grantJournaled pairs the wallet mutation with a journal append — the
// sanctioned shape.
func (b *books) grantJournaled(w *market.Wallets) error {
	if err := w.Deposit("alice", 5); err != nil {
		return err
	}
	return b.journalGrant("alice", 5)
}

// recordWALBacked journals through the WAL type directly.
func (b *books) recordWALBacked(l *market.Ledger) error {
	l.Record(market.Receipt{Customer: "alice", Dataset: "ozone"})
	return b.wal.Sync()
}

// spendJournaled pairs the ε charge with a journal call.
func (b *books) spendJournaled(a *dp.Accountant) error {
	if err := a.Spend(0.25); err != nil {
		return err
	}
	return b.journalGrant("spend", 0)
}

// quoteOnly never mutates the books; reads need no journal.
func quoteOnly(l *market.Ledger) float64 {
	return l.Revenue()
}
