package errwrap

import "fmt"

// wrapsSentinel keeps the errors.Is chain intact.
func wrapsSentinel() error {
	return fmt.Errorf("collect: %w", ErrFixture)
}

// wrapsError propagates an arbitrary error with %w.
func wrapsError(err error) error {
	return fmt.Errorf("collect: %w", err)
}

// seversDeliberately severs explicitly: err.Error() is a string, so
// the break with the chain is visible at the call site.
func seversDeliberately(err error) error {
	return fmt.Errorf("collect: %s", err.Error())
}
