// Package errwrap holds golden cases for the errwrap analyzer.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrFixture is this package's sentinel, declared once.
var ErrFixture = errors.New("errwrap fixture: round failed")

// seversSentinel formats the sentinel with %v, severing errors.Is.
func seversSentinel() error {
	return fmt.Errorf("collect: %v", ErrFixture) // want `sentinel ErrFixture formatted with %v`
}

// dropsWrapped formats an arbitrary error with %v, dropping whatever
// sentinels it wraps.
func dropsWrapped(err error) error {
	return fmt.Errorf("collect: %v", err) // want `error value formatted with %v drops any wrapped sentinels`
}

// redefines forks the sentinel's identity by re-spelling its message.
func redefines() error {
	return errors.New("errwrap fixture: round failed") // want `re-defines the message of sentinel .*ErrFixture`
}
