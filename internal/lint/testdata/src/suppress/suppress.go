// Package suppress exercises the //lint:allow directive machinery. It
// is checked by TestSuppression directly rather than through want
// comments: a want comment cannot share a line with the directive it
// documents.
package suppress

// spawnAllowed: a well-formed directive (analyzer plus reason) on the
// line above the finding suppresses it.
func spawnAllowed(work func()) {
	//lint:allow goroutinescope fixture-sanctioned fire-and-forget
	go work()
}

// spawnMissingReason: a reasonless directive is malformed, suppresses
// nothing, and is itself reported.
func spawnMissingReason(work func()) {
	//lint:allow goroutinescope
	go work()
}

// spawnBare has no directive: the finding stands.
func spawnBare(work func()) {
	go work()
}

// unusedDirective suppresses nothing on its line or the next: stale
// allowlists are findings too.
func unusedDirective() int {
	//lint:allow goroutinescope retired case kept for the unused-check
	return 1
}
