// Package noisesource holds golden cases for the noisesource analyzer.
package noisesource

import (
	crand "crypto/rand" // want `import of crypto/rand outside privrange/internal/stats`
	"math/rand"         // want `import of math/rand outside privrange/internal/stats`
	"time"
)

// rawDraw taps an unseeded generator: the draw is untracked noise.
func rawDraw() float64 {
	return rand.Float64()
}

// osEntropy reaches for the kernel's entropy pool, which can never
// replay.
func osEntropy(buf []byte) {
	_, _ = crand.Read(buf)
}

// clockSeed feeds wall-clock time into a stream constructor.
func clockSeed() int64 {
	return newStream(time.Now().UnixNano()) // want `time.Now\(\)-derived seed passed to newStream`
}

func newStream(seed int64) int64 { return seed }
