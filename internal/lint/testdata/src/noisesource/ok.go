package noisesource

import "privrange/internal/stats"

// configSeed derives a stream from configured, replayable inputs — the
// sanctioned source of all randomness.
func configSeed(seed, query int64) *stats.RNG {
	return stats.NewStream(seed, query)
}
