// Package budgetfloat holds golden cases for the budgetfloat analyzer.
package budgetfloat

// exactGate compares two accumulated budgets for exact equality.
func exactGate(epsilon, epsilonPrime float64) bool {
	return epsilon == epsilonPrime // want `exact == on budget-typed floats`
}

// exactNeq is the != spelling of the same bug.
func exactNeq(delta, deltaPrime float64) bool {
	return delta != deltaPrime // want `exact != on budget-typed floats`
}

// headroom differences two budgets inside a comparison, hiding
// catastrophic cancellation.
func headroom(budget, spent, price float64) bool {
	return budget-spent > price // want `budget difference compared directly`
}
