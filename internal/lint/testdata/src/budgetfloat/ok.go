package budgetfloat

import "privrange/internal/stats"

// zeroSentinel: exact zero is the conventional unset/unlimited marker
// and is exactly representable.
func zeroSentinel(epsilon float64) bool {
	return epsilon == 0
}

// tolerantGate goes through the tolerance helper.
func tolerantGate(epsilon, epsilonPrime float64) bool {
	return stats.ApproxEqual(epsilon, epsilonPrime)
}

// rearranged compares sums instead of differences, which does not
// cancel.
func rearranged(spent, epsilon, budget float64) bool {
	return spent+epsilon > budget
}
