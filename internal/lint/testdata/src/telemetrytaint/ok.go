package telemetrytaint

import (
	"time"

	"privrange/internal/core"
	"privrange/internal/dp"
	"privrange/internal/estimator"
	"privrange/internal/sampling"
	"privrange/internal/stats"
	"privrange/internal/telemetry"
)

// snapshotLike mirrors the engine's internal snapshot: a struct that
// holds raw sample sets NEXT TO clean operational fields. Publishing
// the clean fields must stay legal — that is the analyzer's
// field-sensitivity requirement.
type snapshotLike struct {
	sets     []*sampling.SampleSet
	rate     float64
	coverage float64
	nodes    int
}

// publishOperationalState records coverage and rate gauges from a
// struct that also carries the forbidden sets; the sibling fields are
// clean.
func publishOperationalState(r *telemetry.Registry, snap snapshotLike) {
	r.Gauge("coverage", "reachable fraction").Set(snap.coverage)
	r.Gauge("rate", "sampling rate").Set(snap.rate)
	r.Gauge("nodes", "deployment size").Set(float64(snap.nodes))
}

// publishReleasedValue records the perturbed (released) estimate — the
// sanctioned path: taint does not survive the dp mechanism.
func publishReleasedValue(h *telemetry.Histogram, rc estimator.RankCounting, sets []*sampling.SampleSet, q estimator.Query, m dp.Mechanism, rng *stats.RNG) error {
	raw, err := rc.Estimate(sets, q)
	if err != nil {
		return err
	}
	h.Observe(m.Perturb(raw, rng))
	return nil
}

// publishAnswerProvenance records released-answer metadata: an Answer
// is post-noise output, free to observe.
func publishAnswerProvenance(g *telemetry.Gauge, ans *core.Answer) {
	g.Set(ans.Coverage)
}

// publishCounts records plain operational counts and constant tags.
func publishCounts(r *telemetry.Registry, tr *telemetry.Trace, el *telemetry.EventLog, d time.Duration) {
	c := r.Counter("rounds", "rounds driven", telemetry.L("outcome", "ok"))
	c.Inc()
	c.Add(3)
	r.Histogram("latency", "seconds", telemetry.LatencyBuckets).ObserveDuration(d)
	tr.Begin("core.answer")
	tr.Mark("estimate")
	tr.End("ok")
	el.Append("breaker_open", 4, 9, "")
}

// annotateOperational tags spans with constant keys and operational
// values — the sanctioned annotation path.
func annotateOperational(tr *telemetry.Trace, rec *telemetry.SpanRecord, snap snapshotLike, dataset string) {
	tr.Annotate("dataset", dataset)
	tr.Annotate("shard", "3")
	rec.Annot("nodes", string(rune(snap.nodes)))
}
