// Package telemetrytaint holds golden cases for the telemetrytaint
// analyzer.
package telemetrytaint

import (
	"privrange/internal/estimator"
	"privrange/internal/index"
	"privrange/internal/sampling"
	"privrange/internal/telemetry"
)

// gaugeRawEstimate publishes the un-noised estimate as a gauge sample —
// the scrape endpoint would hand it to anyone.
func gaugeRawEstimate(r *telemetry.Registry, rc estimator.RankCounting, sets []*sampling.SampleSet, q estimator.Query) error {
	raw, err := rc.Estimate(sets, q)
	if err != nil {
		return err
	}
	r.Gauge("estimate", "raw").Set(raw) // want `un-noised estimate flows into telemetry`
	return nil
}

// gaugeSampleValue publishes one node's raw reading directly.
func gaugeSampleValue(g *telemetry.Gauge, set *sampling.SampleSet) {
	g.Set(set.Samples[0].Value) // want `flows into telemetry\.Gauge\.Set`
}

// labelFromSample derives a label value from a raw sample rank;
// conversions keep the taint.
func labelFromSample(set *sampling.SampleSet) telemetry.Label {
	return telemetry.L("rank", string(rune(set.Samples[0].Rank))) // want `flows into telemetry\.L`
}

// labelLiteralFromSample smuggles the same value through a Label
// composite literal instead of the constructor.
func labelLiteralFromSample(set *sampling.SampleSet) telemetry.Label {
	return telemetry.Label{Key: "rank", Value: string(rune(set.Samples[0].Rank))} // want `flows into telemetry\.Label`
}

// histogramFlatEstimate records the columnar-path estimate — held to
// the same boundary as the SampleSet path.
func histogramFlatEstimate(h *telemetry.Histogram, rc estimator.RankCounting, ix *index.Index, q estimator.Query) error {
	raw, err := rc.EstimateIndex(ix, q)
	if err != nil {
		return err
	}
	h.Observe(raw) // want `un-noised estimate flows into telemetry\.Histogram\.Observe`
	return nil
}

// counterBatchEstimate feeds a raw batch estimate into a counter.
func counterBatchEstimate(c *telemetry.Counter, rc estimator.RankCounting, ix *index.Index, qs []estimator.Query) error {
	raws := make([]float64, len(qs))
	if err := rc.EstimateIndexBatch(ix, qs, raws); err != nil {
		return err
	}
	c.Add(uint64(raws[0])) // want `flows into telemetry\.Counter\.Add`
	return nil
}

// eventDetailFromSample writes sample-derived text into the event log.
func eventDetailFromSample(el *telemetry.EventLog, set *sampling.SampleSet) {
	for _, s := range set.Samples {
		el.Append("sample_seen", 0, 0, string(rune(s.Rank))) // want `flows into telemetry\.EventLog\.Append`
	}
}

// traceOutcomeFromEstimate tags a span with an estimate-derived string.
func traceOutcomeFromEstimate(tr *telemetry.Trace, rc estimator.RankCounting, sets []*sampling.SampleSet, q estimator.Query) {
	raw, _ := rc.Estimate(sets, q)
	tr.End(string(rune(int(raw)))) // want `flows into telemetry\.Trace\.End`
}

// annotateFromEstimate writes an un-noised estimate into a span
// annotation — /traces exports annotations verbatim.
func annotateFromEstimate(tr *telemetry.Trace, rc estimator.RankCounting, sets []*sampling.SampleSet, q estimator.Query) {
	raw, _ := rc.Estimate(sets, q)
	tr.Annotate("estimate", string(rune(int(raw)))) // want `flows into telemetry\.Trace\.Annotate`
}

// annotateKeyFromSample smuggles a raw rank through the annotation KEY
// position instead of the value.
func annotateKeyFromSample(tr *telemetry.Trace, set *sampling.SampleSet) {
	tr.Annotate(string(rune(set.Samples[0].Rank)), "seen") // want `flows into telemetry\.Trace\.Annotate`
}

// spanRecordAnnotFromSample writes a raw sample value into a span
// record annotation directly.
func spanRecordAnnotFromSample(rec *telemetry.SpanRecord, set *sampling.SampleSet) {
	rec.Annot("value", string(rune(int(set.Samples[0].Value)))) // want `flows into telemetry\.SpanRecord\.Annot`
}
