// Package privacyboundary holds golden cases for the privacyboundary
// analyzer.
package privacyboundary

import (
	"privrange/internal/estimator"
	"privrange/internal/market"
	"privrange/internal/sampling"
)

// leakEstimate releases the un-noised estimate straight to the buyer.
func leakEstimate(rc estimator.RankCounting, sets []*sampling.SampleSet, q estimator.Query) (*market.Response, error) {
	raw, err := rc.Estimate(sets, q)
	if err != nil {
		return nil, err
	}
	return &market.Response{OK: true, Value: raw}, nil // want `un-noised estimate flows into`
}

// leakRank copies a node's raw rank into a response field.
func leakRank(set *sampling.SampleSet, resp *market.Response) {
	resp.Value = float64(set.Samples[0].Rank) // want `flows into .*market\.Response\.Value`
}
