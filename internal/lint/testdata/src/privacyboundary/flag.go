// Package privacyboundary holds golden cases for the privacyboundary
// analyzer.
package privacyboundary

import (
	"privrange/internal/estimator"
	"privrange/internal/index"
	"privrange/internal/market"
	"privrange/internal/sampling"
)

// leakEstimate releases the un-noised estimate straight to the buyer.
func leakEstimate(rc estimator.RankCounting, sets []*sampling.SampleSet, q estimator.Query) (*market.Response, error) {
	raw, err := rc.Estimate(sets, q)
	if err != nil {
		return nil, err
	}
	return &market.Response{OK: true, Value: raw}, nil // want `un-noised estimate flows into`
}

// leakRank copies a node's raw rank into a response field.
func leakRank(set *sampling.SampleSet, resp *market.Response) {
	resp.Value = float64(set.Samples[0].Rank) // want `flows into .*market\.Response\.Value`
}

// leakFlatEstimate releases the un-noised flat-index estimate — the
// columnar hot path is held to the same boundary as the SampleSet path.
func leakFlatEstimate(rc estimator.RankCounting, ix *index.Index, q estimator.Query) (*market.Response, error) {
	raw, err := rc.EstimateIndex(ix, q)
	if err != nil {
		return nil, err
	}
	return &market.Response{OK: true, Value: raw}, nil // want `un-noised estimate flows into`
}

// leakBatchEstimate releases a raw estimate the batch API wrote into its
// out slice.
func leakBatchEstimate(rc estimator.RankCounting, ix *index.Index, qs []estimator.Query, resp *market.Response) error {
	raws := make([]float64, len(qs))
	if err := rc.EstimateIndexBatch(ix, qs, raws); err != nil {
		return err
	}
	resp.Value = raws[0] // want `flows into .*market\.Response\.Value`
	return nil
}
