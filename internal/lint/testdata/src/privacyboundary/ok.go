package privacyboundary

import (
	"privrange/internal/dp"
	"privrange/internal/estimator"
	"privrange/internal/index"
	"privrange/internal/market"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// releasePerturbed is the sanctioned path: the raw estimate passes
// through the dp mechanism before it reaches the response, and the
// mechanism's output is clean by construction.
func releasePerturbed(rc estimator.RankCounting, sets []*sampling.SampleSet, q estimator.Query, m dp.Mechanism, rng *stats.RNG) (*market.Response, error) {
	raw, err := rc.Estimate(sets, q)
	if err != nil {
		return nil, err
	}
	return &market.Response{OK: true, Value: m.Perturb(raw, rng)}, nil
}

// releasePlain passes already-released scalars through untouched.
func releasePlain(value, price float64) market.Response {
	return market.Response{OK: true, Value: value, Price: price}
}

// releaseFlatPerturbed is the sanctioned flat-index path: the raw
// estimate from the columnar hot path goes through the mechanism before
// reaching the response, exactly like the SampleSet path.
func releaseFlatPerturbed(rc estimator.RankCounting, ix *index.Index, q estimator.Query, m dp.Mechanism, rng *stats.RNG) (*market.Response, error) {
	raw, err := rc.EstimateIndex(ix, q)
	if err != nil {
		return nil, err
	}
	return &market.Response{OK: true, Value: m.Perturb(raw, rng)}, nil
}
