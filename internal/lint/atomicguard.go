package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicGuard enforces all-or-nothing atomicity: a variable or field
// accessed through sync/atomic anywhere must be accessed atomically
// everywhere. One plain `x++` next to a fleet of atomic.AddUint64(&x,…)
// is a data race the race detector only reports when a test happens to
// interleave the two — this analyzer reports it statically, across
// packages, via the AtomicFields facts each package serializes.
//
// Typed atomics (atomic.Uint64, atomic.Pointer[T], …) get the
// complementary check: their method set is the only safe access, so
// copying one by value — as a call argument, assignment, return value,
// composite-literal element, or range-over-slice value — silently forks
// the counter state and is a finding.
var AtomicGuard = &Analyzer{
	Name: "atomicguard",
	Doc: `a field accessed through sync/atomic anywhere must be accessed
atomically everywhere (mixed plain/atomic access races); typed atomics
must never be copied by value`,
	Run: runAtomicGuard,
}

// atomicResult records which raw variables a package accesses through
// address-taking sync/atomic calls.
type atomicResult struct {
	// objs: object identity for same-package plain-access checks.
	objs map[types.Object]bool
	// ids: exported identities ("pkg.Type.field", "pkg.var") for facts.
	ids map[string]bool
}

// atomicIDs returns the sorted exported identities for serialization.
func (r *atomicResult) atomicIDs() []string {
	out := make([]string, 0, len(r.ids))
	for id := range r.ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// analyzeAtomic finds every &x argument to a sync/atomic call in pkg.
// Shared by the facts layer and the atomicguard pass.
func analyzeAtomic(pkg *Package) *atomicResult {
	res := &atomicResult{
		objs: make(map[types.Object]bool),
		ids:  make(map[string]bool),
	}
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicPkgCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, okU := ast.Unparen(arg).(*ast.UnaryExpr)
				if !okU || un.Op != token.AND {
					continue
				}
				target := ast.Unparen(un.X)
				if obj := receiverObject(info, target); obj != nil {
					res.objs[obj] = true
				}
				if id := atomicVarID(info, target); id != "" {
					res.ids[id] = true
				}
			}
			return true
		})
	}
	return res
}

// isAtomicPkgCall reports whether call invokes a top-level sync/atomic
// function (AddUint64, LoadInt64, StorePointer, CompareAndSwap…, not a
// typed-atomic method).
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// atomicVarID names a raw atomic target for cross-package facts:
// "pkg.Type.field" for struct fields, "pkg.var" for package-level
// variables, "" for locals (object identity suffices within a package).
func atomicVarID(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if field, okF := sel.Obj().(*types.Var); okF {
				if named, okN := derefNamed(sel.Recv()); okN {
					return qualifyNamed(named) + "." + field.Name()
				}
			}
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.ObjectOf(e).(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

func runAtomicGuard(pass *Pass) error {
	info := pass.TypesInfo
	own := analyzeAtomic(pass.Loaded)

	// Cross-package atomic identities from facts (the import closure and,
	// in the normal configuration, this package itself).
	importedIDs := make(map[string]bool)
	if pass.Facts != nil {
		for _, p := range pass.Facts.Packages() {
			if pf, ok := pass.Facts.ForPackage(p); ok {
				for _, id := range pf.AtomicFields {
					importedIDs[id] = true
				}
			}
		}
	}

	isAtomicTarget := func(obj types.Object, id string) bool {
		if obj != nil && own.objs[obj] {
			return true
		}
		return id != "" && importedIDs[id]
	}

	pass.inspectStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok {
				if field, okF := sel.Obj().(*types.Var); okF {
					id := atomicVarID(info, n)
					if isAtomicTarget(field, id) && !insideAtomicCall(info, stack) {
						pass.Reportf(n.Sel.Pos(), "plain access to %s, which is accessed with sync/atomic elsewhere: mixed plain/atomic access is a data race — use atomic.Load/Store here too", plainAtomicName(id, field))
					}
				}
			}
		case *ast.Ident:
			// Plain identifier uses (package vars, locals). Skip the Sel of
			// a selector (handled above) and declarations.
			if len(stack) > 0 {
				if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == n {
					return true
				}
			}
			if v, ok := info.Uses[n].(*types.Var); ok {
				id := atomicVarID(info, n)
				if isAtomicTarget(v, id) && !insideAtomicCall(info, stack) {
					pass.Reportf(n.Pos(), "plain access to %s, which is accessed with sync/atomic elsewhere: mixed plain/atomic access is a data race — use atomic.Load/Store here too", plainAtomicName(id, v))
				}
			}
		case *ast.RangeStmt:
			// for _, b := range buckets where buckets is []atomic.T copies
			// every element.
			if n.Value != nil {
				if t := exprType(info, n.Value); t != nil && isTypedAtomic(t) {
					pass.Reportf(n.Value.Pos(), "range copies %s values out of the slice: a typed atomic must not be copied — range by index and use &s[i]", atomicTypeName(t))
				}
			}
		}
		if e, ok := n.(ast.Expr); ok {
			if t := exprType(info, e); t != nil && isTypedAtomic(t) {
				if bad, how := atomicCopyContext(e, stack); bad {
					pass.Reportf(e.Pos(), "%s is copied by value (%s): the copy's state silently diverges from the original — keep a pointer or access through the original", atomicTypeName(t), how)
				}
			}
		}
		return true
	})
	return nil
}

func plainAtomicName(id string, obj types.Object) string {
	if id != "" {
		return shortLock(id)
	}
	return obj.Name()
}

// insideAtomicCall reports whether the node at the top of stack sits
// under an &x argument of a sync/atomic call — the one legitimate
// non-method access to a raw atomic variable. The shape is
// CallExpr(atomic.F) → UnaryExpr(&) → … → node, with parens allowed.
func insideAtomicCall(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 1; i-- {
		un, ok := stack[i].(*ast.UnaryExpr)
		if !ok {
			if _, isParen := stack[i].(*ast.ParenExpr); isParen {
				continue
			}
			return false
		}
		if un.Op != token.AND {
			return false
		}
		for j := i - 1; j >= 0; j-- {
			if _, isParen := stack[j].(*ast.ParenExpr); isParen {
				continue
			}
			call, okC := stack[j].(*ast.CallExpr)
			return okC && isAtomicPkgCall(info, call)
		}
		return false
	}
	return false
}

// exprType resolves the type of an expression node, preferring the
// Types map and falling back to object resolution for identifiers.
func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		if !tv.IsValue() {
			return nil // type expressions ([]atomic.Uint64 in a make) are not uses
		}
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, okV := info.ObjectOf(id).(*types.Var); okV {
			return v.Type()
		}
	}
	return nil
}

// isTypedAtomic reports whether t is one of sync/atomic's typed values
// (Uint64, Int64, Bool, Pointer[T], Value, …).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func atomicTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return t.String()
	}
	return "atomic." + named.Obj().Name()
}

// atomicCopyContext decides whether an atomic-typed expression in this
// syntactic position copies the value. Method receivers, address-of,
// and selector bases are the safe positions; everything that moves the
// value (arguments, assignments, returns, composite literals, sends)
// is a copy.
func atomicCopyContext(e ast.Expr, stack []ast.Node) (bad bool, how string) {
	if len(stack) == 0 {
		return false, ""
	}
	// Skip over parens.
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false, ""
	}
	switch p := stack[i].(type) {
	case *ast.SelectorExpr:
		return false, "" // method call or field access through the value
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return false, ""
		}
		return true, "operand of " + p.Op.String()
	case *ast.StarExpr:
		// *p as a standalone expression: judged by ITS parent when the
		// walker reaches it; the inner pointer never matches here.
		return false, ""
	case *ast.CallExpr:
		for _, a := range p.Args {
			if ast.Unparen(a) == e {
				return true, "passed as a call argument"
			}
		}
		return false, ""
	case *ast.AssignStmt:
		for _, r := range p.Rhs {
			if ast.Unparen(r) == e {
				return true, "assigned"
			}
		}
		return false, ""
	case *ast.ValueSpec:
		for _, v := range p.Values {
			if ast.Unparen(v) == e {
				return true, "used as an initializer"
			}
		}
		return false, ""
	case *ast.ReturnStmt:
		return true, "returned"
	case *ast.CompositeLit:
		return true, "placed in a composite literal"
	case *ast.KeyValueExpr:
		if ast.Unparen(p.Value) == e {
			return true, "placed in a composite literal"
		}
		return false, ""
	case *ast.SendStmt:
		if ast.Unparen(p.Value) == e {
			return true, "sent on a channel"
		}
		return false, ""
	case *ast.BinaryExpr:
		return true, "operand of " + p.Op.String()
	case *ast.IndexExpr:
		if ast.Unparen(p.Index) == e {
			return true, "used as an index"
		}
		return false, "" // e is the slice/array being indexed
	case *ast.RangeStmt:
		return false, "" // handled separately with a sharper message
	}
	return false, ""
}
