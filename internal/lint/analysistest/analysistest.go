// Package analysistest runs privlint analyzers over golden fixture
// packages and checks their diagnostics against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library alone (the same constraint that shapes
// internal/lint's loader: no module downloads).
//
// A fixture lives in internal/lint/testdata/src/<name>/ and is an
// ordinary Go package, except that the go tool never builds it
// (testdata is invisible to ./... patterns). Fixtures may import
// module packages — privrange/internal/iot, /wire, /market — so the
// golden cases exercise the analyzers against the real types they
// guard, not mocks.
//
// Expectations are end-of-line comments:
//
//	b := nw.Base() // want `escapes the calling expression`
//
// Every diagnostic must match a want on its line and every want must
// be matched by a diagnostic; mismatches in either direction fail the
// test.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"privrange/internal/lint"
)

var (
	once      sync.Once
	loader    *lint.Loader
	module    []*lint.Package
	sentinels map[string]lint.Sentinel
	facts     *lint.FactStore
	initErr   error
)

// setup loads the whole module once, shared across tests: fixtures
// re-use the already-checked module packages, the sentinel table covers
// every package the errwrap analyzer needs to know about, and the fact
// store carries the module's serialized lock/determinism/atomic
// summaries for the cross-package analyzers.
func setup() {
	loader, initErr = lint.NewLoader(".")
	if initErr != nil {
		return
	}
	module, initErr = loader.Load("./...")
	if initErr != nil {
		return
	}
	sentinels = lint.CollectSentinels(module)
	facts, initErr = lint.ComputeFacts(module, loader.Fset)
}

// Run loads testdata/src/<name>, applies analyzer a to it, and asserts
// the diagnostics match the fixture's want comments exactly.
func Run(t *testing.T, a *lint.Analyzer, name string) {
	t.Helper()
	once.Do(setup)
	if initErr != nil {
		t.Fatalf("loading module: %v", initErr)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := loader.LoadDir(dir, "privrange/internal/lint/testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	merged := make(map[string]lint.Sentinel, len(sentinels)+1)
	for k, v := range sentinels {
		merged[k] = v
	}
	for k, v := range lint.CollectSentinels([]*lint.Package{pkg}) {
		merged[k] = v
	}
	// The fixture joins the module's fact store so cross-package
	// summaries (lock edges, det hazards, atomic fields) flow into it —
	// and its own facts are added the same serialized way, proving the
	// fixture round trip too.
	if err := facts.Add(pkg, loader.Fset); err != nil {
		t.Fatalf("computing facts for fixture %s: %v", name, err)
	}
	diags, err := lint.Run([]*lint.Analyzer{a}, []*lint.Package{pkg}, loader.Fset, lint.RunConfig{Sentinels: merged, Facts: facts})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, name, err)
	}
	wants := parseWants(t, pkg)
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		if w := claim(wants, pos.Filename, pos.Line, d.Message); w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// CleanModule asserts the full analyzer suite reports nothing on the
// module itself — the "make lint passes clean at tip" invariant,
// enforced by go test so it cannot rot silently.
func CleanModule(t *testing.T) {
	t.Helper()
	once.Do(setup)
	if initErr != nil {
		t.Fatalf("loading module: %v", initErr)
	}
	diags, err := lint.Run(lint.All(), module, loader.Fset, lint.RunConfig{Sentinels: sentinels, Facts: facts})
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s [%s]", loader.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseWants extracts `// want "re"` (or backquoted) comments from the
// fixture's files.
func parseWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				lit := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				pattern, err := strconv.Unquote(lit)
				if err != nil {
					t.Fatalf("%s: malformed want comment %q: %v", loader.Fset.Position(c.Pos()), lit, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", loader.Fset.Position(c.Pos()), pattern, err)
				}
				pos := loader.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// claim finds and marks the first unmatched want on the diagnostic's
// line whose regexp matches the message.
func claim(wants []*want, file string, line int, message string) *want {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(message) {
			w.matched = true
			return w
		}
	}
	return nil
}
