package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineScope enforces goroutine discipline: every `go` statement
// must be provably joined or cancellable. A spawn passes when the
// analyzer can see one of:
//
//   - WaitGroup join: the spawned body calls Done() on a sync.WaitGroup
//     that is Wait()ed — the same local variable for pool-style fanout,
//     or the same struct field anywhere in the package for long-lived
//     workers joined by a Close/Shutdown method;
//   - cancellation: the body selects on ctx.Done() (context.Context) or
//     receives from / ranges over a channel the package close()s.
//
// Anything else — fire-and-forget literals, spawns of functions the
// analyzer cannot resolve — is a finding. The rule exists because the
// serving path accretes goroutines per request: an unjoined spawn is
// invisible at 10 QPS and an OOM at the paper's scale, and an unjoined
// spawn also outlives Close(), racing teardown (exactly the class of
// leak the race detector only catches when a test gets lucky).
var GoroutineScope = &Analyzer{
	Name: "goroutinescope",
	Doc: `every go statement must be tied to a bounded pool, a Wait()ed
sync.WaitGroup, or a context/close-cancellable loop the analyzer can prove
is joined or cancelled; unbounded spawn-per-request patterns are findings`,
	Run: runGoroutineScope,
}

func runGoroutineScope(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1 (package-wide): which WaitGroup objects are Wait()ed, which
	// channel objects are close()d, and where each named function's body
	// lives. Object identity (types.Object) covers both fields — one
	// object per field declaration, shared by all instances — and locals.
	waited := make(map[types.Object]bool)
	closed := make(map[types.Object]bool)
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if fn, ok := info.Defs[n.Name].(*types.Func); ok {
					decls[fn] = n
				}
			case *ast.CallExpr:
				if fn := calleeFunc(info, n); fn != nil && isFuncNamed(fn, "sync", "WaitGroup.Wait") {
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						if obj := receiverObject(info, sel.X); obj != nil {
							waited[obj] = true
						}
					}
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
					if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin && len(n.Args) == 1 {
						if obj := receiverObject(info, n.Args[0]); obj != nil {
							closed[obj] = true
						}
					}
				}
			}
			return true
		})
	}

	// Pass 2: judge every go statement.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := spawnedBody(info, decls, gs)
			if body == nil {
				pass.Reportf(gs.Pos(), "goroutine target is not analyzable (interface, cross-package, or indirect call): spawn a local wrapper that joins a WaitGroup or watches a done channel so the lifetime is provable")
				return true
			}
			if goroutineJoined(info, body, waited, closed) {
				return true
			}
			pass.Reportf(gs.Pos(), "goroutine is not provably joined or cancelled: tie it to a Wait()ed sync.WaitGroup (pool fanout or a Close-joined field) or a ctx.Done()/closed-channel loop — unjoined spawns leak per request and outlive shutdown")
			return true
		})
	}
	return nil
}

// spawnedBody resolves the statement list a go statement executes:
// a function literal's body, or the declaration body of a same-package
// named function or method.
func spawnedBody(info *types.Info, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	fn := calleeFunc(info, gs.Call)
	if fn == nil {
		return nil
	}
	if fd, ok := decls[fn]; ok && fd.Body != nil {
		return fd.Body
	}
	return nil
}

// goroutineJoined reports whether the spawned body carries a join or
// cancellation proof.
func goroutineJoined(info *types.Info, body *ast.BlockStmt, waited, closed map[types.Object]bool) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			// wg.Done() on a Wait()ed WaitGroup.
			if isFuncNamed(fn, "sync", "WaitGroup.Done") {
				if sel, okSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); okSel {
					if obj := receiverObject(info, sel.X); obj != nil && waited[obj] {
						ok = true
					}
				}
			}
			// ctx.Done(): the loop is context-cancellable.
			if isFuncNamed(fn, "context", "Done") || isContextDone(fn) {
				ok = true
			}
		case *ast.UnaryExpr:
			// <-ch on a package-closed channel.
			if n.Op.String() == "<-" {
				if obj := receiverObject(info, n.X); obj != nil && closed[obj] {
					ok = true
				}
			}
		case *ast.RangeStmt:
			// for range ch on a package-closed channel terminates at close.
			if obj := receiverObject(info, n.X); obj != nil && closed[obj] {
				ok = true
			}
		}
		return !ok
	})
	return ok
}

// isContextDone matches the Done method of the context.Context
// interface (calleeFunc resolves interface methods to the interface's
// *types.Func).
func isContextDone(fn *types.Func) bool {
	return fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// receiverObject resolves an expression to the variable object it
// denotes: a local for plain identifiers, the field object for
// selector expressions (instance-independent), nil otherwise.
func receiverObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.ObjectOf(e).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, okV := sel.Obj().(*types.Var); okV {
				return v
			}
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.UnaryExpr:
		return receiverObject(info, e.X)
	}
	return nil
}
