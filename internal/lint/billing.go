package lint

import (
	"go/ast"
	"go/token"
)

// Billing mechanizes the every-attempt-is-billed invariant from the
// fault-injection work: once a transmit path encodes a message, bytes
// may cross the wire, so the function must account them on EVERY exit
// path — including loss, corruption and crash-window give-ups. The
// historical bug class is an early `return` slipped between the encode
// and the cost accounting, silently under-billing failed attempts.
//
// Mechanization: any function calling wire.Encode is a transmit path.
// It must contain a billing site — a write to a `cost` field or a call
// to a bill* helper — and no return statement may sit between the
// encode's error check and that billing site. Billing from a defer
// (the pattern iot.Network.transmit uses) trivially satisfies the
// ordering: the defer is registered before any attempt is made.
var Billing = &Analyzer{
	Name: "billing",
	Doc: `in transmit paths (functions calling wire.Encode), require cost
accounting on every exit: each attempt's bytes must be billed whether the
message was delivered, lost, corrupted or swallowed by a crash window —
returns between encode and billing silently under-bill the deployment`,
	Run: runBilling,
}

const wirePkg = "privrange/internal/wire"

func runBilling(pass *Pass) error {
	// The codec layer itself (wire.EncodedSize and friends) encodes
	// without transmitting; billing is the transport's obligation.
	if pass.Pkg.Path() == wirePkg {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBilling(pass, fd)
		}
	}
	return nil
}

func checkBilling(pass *Pass, fd *ast.FuncDecl) {
	encode := findEncodeCall(pass, fd.Body)
	if encode == nil {
		return
	}
	billingPos := findBillingPos(fd.Body)
	if billingPos == token.NoPos {
		pass.Reportf(encode.Pos(), "%s encodes a wire message but never bills it: every transmit attempt must update the cost report (bytes are spent even when delivery fails)", fd.Name.Name)
		return
	}
	// Returns inside the encode-failure check are exempt: an encode
	// error means nothing crossed the wire. Everything between the end
	// of that check and the billing site must fall through to billing.
	exemptEnd := encodeErrCheckEnd(fd.Body, encode)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() > exemptEnd && ret.Pos() < billingPos {
			pass.Reportf(ret.Pos(), "return before the attempt is billed: bytes already crossed the wire when this path runs; bill first (or register the billing in a defer right after encoding)")
		}
		return true
	})
}

// findEncodeCall returns the first wire.Encode call in body, or nil.
func findEncodeCall(pass *Pass, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass.TypesInfo, call); isFuncNamed(fn, wirePkg, "Encode") {
			found = call
			return false
		}
		return true
	})
	return found
}

// findBillingPos locates the first cost-accounting statement: an
// assignment or inc/dec touching a selector chain through a field
// named "cost", or a call to a method whose name starts with "bill".
// A billing site inside a DeferStmt counts at the defer's position.
func findBillingPos(body *ast.BlockStmt) token.Pos {
	pos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if selectorChainHas(l, "cost") {
					pos = n.Pos()
					return false
				}
			}
		case *ast.IncDecStmt:
			if selectorChainHas(n.X, "cost") {
				pos = n.Pos()
				return false
			}
		case *ast.CallExpr:
			name := calleeName(n)
			if len(name) >= 4 && name[:4] == "bill" {
				pos = n.Pos()
				return false
			}
		}
		return true
	})
	return pos
}

// selectorChainHas reports whether e is a selector chain mentioning a
// component named name (e.g. nw.cost.Bytes has "cost").
func selectorChainHas(e ast.Expr, name string) bool {
	for {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if sel.Sel.Name == name {
			return true
		}
		e = sel.X
	}
}

// encodeErrCheckEnd returns the position after which returns are no
// longer excused as encode-failure early-outs: the end of the if
// statement immediately following the statement containing the encode
// call (if any), else the end of that statement itself.
func encodeErrCheckEnd(body *ast.BlockStmt, encode *ast.CallExpr) token.Pos {
	end := encode.End()
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			if encode.Pos() >= stmt.Pos() && encode.End() <= stmt.End() {
				end = stmt.End()
				if i+1 < len(block.List) {
					if ifStmt, ok := block.List[i+1].(*ast.IfStmt); ok {
						end = ifStmt.End()
					}
				}
				return false
			}
		}
		return true
	})
	return end
}
