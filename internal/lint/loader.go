package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and type-checks the module's packages using only the
// standard library. Module packages are checked from source (the
// analyzers need syntax); their standard-library dependencies are
// resolved from the toolchain's compiled export data, discovered via
// `go list -deps -export`. This keeps privlint building and running
// with no module downloads — the property that lets `make lint` run in
// air-gapped environments.
type Loader struct {
	// ModuleDir is the directory containing go.mod.
	ModuleDir string

	Fset *token.FileSet

	exportFile map[string]string     // import path -> export data file
	listed     map[string]*listedPkg // import path -> go list record
	checked    map[string]*Package   // module packages checked from source
	gc         types.Importer        // std/export-data importer
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Imports    []string
}

// NewLoader returns a loader rooted at the module containing dir. It
// fails when no enclosing go.mod exists.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	l := &Loader{
		ModuleDir:  root,
		Fset:       token.NewFileSet(),
		exportFile: make(map[string]string),
		listed:     make(map[string]*listedPkg),
		checked:    make(map[string]*Package),
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", l.lookupExport)
	return l, nil
}

// Load lists patterns (plus all dependencies, with export data), then
// parses and type-checks every matched module package from source in
// dependency order. It returns the packages matching patterns, sorted
// by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := l.list(append([]string{"-deps"}, patterns...)...); err != nil {
		return nil, err
	}
	// A second, dependency-free listing identifies the roots the
	// patterns actually name.
	roots, err := l.listRoots(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range roots {
		pkg, err := l.check(path, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir parses and type-checks the single package in dir (non-test
// files) under the synthetic import path asPath. It exists for the
// analysistest harness, whose fixture packages live under testdata/
// where the go tool refuses to look. Fixtures may import module and
// standard-library packages; those are resolved like any other load.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(asPath, &listedPkg{ImportPath: asPath, Dir: dir, GoFiles: files})
}

// list runs `go list -export -json` with args and folds the records
// into the loader's tables.
func (l *Loader) list(args ...string) error {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export",
		"-json=ImportPath,Dir,Standard,Export,GoFiles,Imports"}, args...)...)
	cmd.Dir = l.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if _, ok := l.listed[p.ImportPath]; !ok {
			rec := p
			l.listed[p.ImportPath] = &rec
			if p.Export != "" {
				l.exportFile[p.ImportPath] = p.Export
			}
		}
	}
}

// listRoots resolves patterns to the import paths they name.
func (l *Loader) listRoots(patterns ...string) ([]string, error) {
	cmd := exec.Command("go", append([]string{"list"}, patterns...)...)
	cmd.Dir = l.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return strings.Fields(string(out)), nil
}

// lookupExport feeds the gc importer compiled export data located by
// go list. Packages missing from the initial -deps listing (a fixture
// importing something the module does not) are listed lazily.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := l.exportFile[path]
	if !ok {
		if err := l.list(path); err != nil {
			return nil, err
		}
		if file, ok = l.exportFile[path]; !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
	}
	return os.Open(file)
}

// Import implements types.Importer: module packages resolve to their
// source-checked form, everything else to compiled export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.checked[path]; ok {
		return pkg.Types, nil
	}
	if rec, ok := l.listed[path]; ok && !rec.Standard && rec.Dir != "" &&
		strings.HasPrefix(rec.Dir, l.ModuleDir) {
		pkg, err := l.check(path, nil)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gc.Import(path)
}

// check parses and type-checks one package from source. rec overrides
// the go list record (used by LoadDir); nil selects the listed one.
func (l *Loader) check(path string, rec *listedPkg) (*Package, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	if rec == nil {
		rec = l.listed[path]
	}
	if rec == nil {
		return nil, fmt.Errorf("lint: package %q was not listed", path)
	}
	var files []*ast.File
	for _, name := range rec.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(rec.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{PkgPath: path, Dir: rec.Dir, Files: files, Types: tpkg, Info: info}
	l.checked[path] = pkg
	return pkg, nil
}
