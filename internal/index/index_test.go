package index

import (
	"math"
	"sort"
	"testing"

	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// drawSets builds k random sorted node datasets and Bernoulli-samples
// each, giving realistic rank-annotated inputs.
func drawSets(t *testing.T, rng *stats.RNG, k, maxN int, p float64) []*sampling.SampleSet {
	t.Helper()
	sets := make([]*sampling.SampleSet, k)
	for i := range sets {
		n := rng.Intn(maxN + 1)
		data := make([]float64, n)
		for j := range data {
			data[j] = float64(rng.Intn(60)) // heavy duplicates on purpose
		}
		sort.Float64s(data)
		set, err := sampling.Draw(data, p, rng.Child(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = set
	}
	return sets
}

func TestBuildRoundTrips(t *testing.T) {
	t.Parallel()
	rng := stats.NewRNG(7)
	sets := drawSets(t, rng, 9, 200, 0.4)
	ix, err := Build(sets)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Nodes() != len(sets) {
		t.Fatalf("Nodes() = %d, want %d", ix.Nodes(), len(sets))
	}
	wantSamples, wantN := 0, 0
	for i, set := range sets {
		wantSamples += len(set.Samples)
		wantN += set.N
		if ix.NodeN(i) != set.N {
			t.Errorf("node %d: NodeN = %d, want %d", i, ix.NodeN(i), set.N)
		}
		values, ranks, n := ix.Node(i)
		if n != set.N {
			t.Errorf("node %d: Node n = %d, want %d", i, n, set.N)
		}
		if len(values) != len(set.Samples) || len(ranks) != len(set.Samples) {
			t.Fatalf("node %d: columns %d/%d, want %d", i, len(values), len(ranks), len(set.Samples))
		}
		for j, s := range set.Samples {
			if values[j] != s.Value || int(ranks[j]) != s.Rank {
				t.Fatalf("node %d sample %d: (%v,%d) != (%v,%d)",
					i, j, values[j], ranks[j], s.Value, s.Rank)
			}
		}
	}
	if ix.Samples() != wantSamples {
		t.Errorf("Samples() = %d, want %d", ix.Samples(), wantSamples)
	}
	if ix.TotalN() != wantN {
		t.Errorf("TotalN() = %d, want %d", ix.TotalN(), wantN)
	}
	if got, want := ix.MemoryBytes(), 12*wantSamples+4*(len(sets)+1)+4*len(sets); got != want {
		t.Errorf("MemoryBytes() = %d, want %d", got, want)
	}
}

func TestBuildEmpty(t *testing.T) {
	t.Parallel()
	ix, err := Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Nodes() != 0 || ix.Samples() != 0 || ix.TotalN() != 0 {
		t.Errorf("empty index not empty: %d nodes, %d samples, %d records",
			ix.Nodes(), ix.Samples(), ix.TotalN())
	}
	// A node with no samples still records its dataset size.
	ix, err = Build([]*sampling.SampleSet{{N: 42}})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Nodes() != 1 || ix.NodeN(0) != 42 || ix.Samples() != 0 {
		t.Errorf("sampleless node mis-indexed: nodes=%d n=%d samples=%d",
			ix.Nodes(), ix.NodeN(0), ix.Samples())
	}
}

func TestBuildRejectsCorruptSets(t *testing.T) {
	t.Parallel()
	cases := map[string][]*sampling.SampleSet{
		"nil set": {nil},
		"rank zero": {{N: 5, Samples: []sampling.Sample{
			{Value: 1, Rank: 0}}}},
		"rank beyond n": {{N: 2, Samples: []sampling.Sample{
			{Value: 1, Rank: 3}}}},
		"ranks not increasing": {{N: 5, Samples: []sampling.Sample{
			{Value: 1, Rank: 2}, {Value: 2, Rank: 2}}}},
		"values decreasing": {{N: 5, Samples: []sampling.Sample{
			{Value: 2, Rank: 1}, {Value: 1, Rank: 2}}}},
		"n outside int32": {{N: math.MaxInt32 + 1}},
		"negative n":      {{N: -1}},
	}
	for name, sets := range cases {
		if _, err := Build(sets); err == nil {
			t.Errorf("%s: Build accepted corrupt input", name)
		}
	}
}

// TestIndexIsACopy pins the immutability contract: mutating the source
// sets after Build must not reach the index.
func TestIndexIsACopy(t *testing.T) {
	t.Parallel()
	set := &sampling.SampleSet{N: 3, Samples: []sampling.Sample{
		{Value: 1, Rank: 1}, {Value: 2, Rank: 3},
	}}
	ix, err := Build([]*sampling.SampleSet{set})
	if err != nil {
		t.Fatal(err)
	}
	set.Samples[0].Value = 99
	values, ranks, _ := ix.Node(0)
	if values[0] != 1 || ranks[0] != 1 {
		t.Errorf("index aliases its input: values[0]=%v ranks[0]=%d", values[0], ranks[0])
	}
}
