// Package index provides the broker's columnar sample index: every
// node's rank-annotated samples flattened into contiguous arrays so the
// range-counting hot path runs branch-light binary searches over flat
// memory instead of chasing []*sampling.SampleSet pointers per query.
//
// The index is built once per collection round (the base station
// rebuilds it whenever its sample-state version moves) and shared
// immutably through snapshots: queries never pay the build cost, and
// because the layout is append-only after Build, concurrent readers
// need no synchronization. The SampleSet representation remains the
// node-side/wire format and the correctness oracle — the estimators'
// flat kernels are required (and property-tested) to return
// bit-identical results to the SampleSet path.
//
// Layout: values and ranks are parallel arrays holding node 0's samples
// first, then node 1's, and so on; start[i] / start[i+1] delimit node
// i's slice and n[i] records the node's dataset size n_i. Within a node
// the samples keep their SampleSet order (sorted by value, ties in rank
// order), so a binary search over values[start[i]:start[i+1]] answers
// the same predecessor/successor questions SampleSet answers.
package index

import (
	"fmt"
	"math"

	"privrange/internal/sampling"
)

// Index is the immutable columnar layout of a deployment's samples.
// Build is the only constructor; a built index is never mutated, so it
// is safe for unsynchronized concurrent use.
type Index struct {
	// values[start[i]:start[i+1]] are node i's sample values in
	// non-decreasing order; ranks is parallel to values.
	values []float64
	ranks  []int32
	// start has len(nodes)+1 entries; start[0] == 0 and
	// start[len(n)] == len(values).
	start []int32
	// n[i] is node i's dataset size n_i.
	n []int32
	// totalN caches Σ n_i.
	totalN int
}

// Build flattens per-node sample sets (ordered by node id, as returned
// by the base station) into a columnar index. The sets are copied, not
// retained. It rejects nil sets, sizes or ranks that do not fit the
// index's int32 columns, and samples violating the SampleSet rank/value
// ordering invariants — a corrupt index would silently mis-answer every
// query, so Build re-checks rather than trusting the caller.
func Build(sets []*sampling.SampleSet) (*Index, error) {
	total := 0
	for i, set := range sets {
		if set == nil {
			return nil, fmt.Errorf("index: nil sample set for node %d", i)
		}
		total += len(set.Samples)
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("index: %d samples exceed int32 offsets", total)
	}
	ix := &Index{
		values: make([]float64, 0, total),
		ranks:  make([]int32, 0, total),
		start:  make([]int32, len(sets)+1),
		n:      make([]int32, len(sets)),
	}
	for i, set := range sets {
		if set.N < 0 || set.N > math.MaxInt32 {
			return nil, fmt.Errorf("index: node %d dataset size %d outside int32", i, set.N)
		}
		prevRank := 0
		prevValue := math.Inf(-1)
		for j, s := range set.Samples {
			if s.Rank <= prevRank || s.Rank > set.N {
				return nil, fmt.Errorf("index: node %d sample %d rank %d invalid (prev %d, n=%d)",
					i, j, s.Rank, prevRank, set.N)
			}
			if s.Value < prevValue {
				return nil, fmt.Errorf("index: node %d sample %d value %v decreases (prev %v)",
					i, j, s.Value, prevValue)
			}
			ix.values = append(ix.values, s.Value)
			ix.ranks = append(ix.ranks, int32(s.Rank))
			prevRank = s.Rank
			prevValue = s.Value
		}
		ix.start[i+1] = int32(len(ix.values))
		ix.n[i] = int32(set.N)
		ix.totalN += set.N
	}
	return ix, nil
}

// Nodes returns k, the number of nodes the index covers.
func (ix *Index) Nodes() int { return len(ix.n) }

// Samples returns the total number of indexed samples.
func (ix *Index) Samples() int { return len(ix.values) }

// TotalN returns |D| = Σ n_i.
func (ix *Index) TotalN() int { return ix.totalN }

// NodeN returns node i's dataset size n_i.
func (ix *Index) NodeN(i int) int { return int(ix.n[i]) }

// Node returns node i's value and rank columns (aliases into the index,
// must not be mutated) and its dataset size n_i.
func (ix *Index) Node(i int) (values []float64, ranks []int32, n int) {
	lo, hi := ix.start[i], ix.start[i+1]
	return ix.values[lo:hi:hi], ix.ranks[lo:hi:hi], int(ix.n[i])
}

// MemoryBytes reports the index's approximate resident size — the flat
// columns only, ignoring the struct header. Exposed so capacity
// planning and tests can reason about the build-once cost.
func (ix *Index) MemoryBytes() int {
	return 8*len(ix.values) + 4*len(ix.ranks) + 4*len(ix.start) + 4*len(ix.n)
}
