package topk

import (
	"math"
	"sort"
	"testing"

	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// skewedValues builds a dataset with a known frequency ranking:
// value 10 appears 4000 times, 20 appears 2000, 30 appears 1000, then a
// uniform tail over 100..150 (≤60 each).
func skewedValues() []float64 {
	var out []float64
	add := func(v float64, n int) {
		for i := 0; i < n; i++ {
			out = append(out, v)
		}
	}
	add(10, 4000)
	add(20, 2000)
	add(30, 1000)
	rng := stats.NewRNG(1)
	for i := 0; i < 3000; i++ {
		out = append(out, float64(100+rng.Intn(50)))
	}
	sort.Float64s(out)
	return out
}

func drawSets(t *testing.T, values []float64, k int, p float64, seed int64) []*sampling.SampleSet {
	t.Helper()
	root := stats.NewRNG(seed)
	per := len(values) / k
	sets := make([]*sampling.SampleSet, k)
	for i := 0; i < k; i++ {
		part := values[i*per : (i+1)*per]
		set, err := sampling.Draw(part, p, root.Child(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = set
	}
	return sets
}

func TestValidation(t *testing.T) {
	t.Parallel()
	sets := []*sampling.SampleSet{{N: 5}}
	if _, err := (Estimator{P: 0}).Top(sets, 3); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := (Estimator{P: 0.5}).Top(nil, 3); err == nil {
		t.Error("no sets should fail")
	}
	if _, err := (Estimator{P: 0.5}).Top([]*sampling.SampleSet{nil}, 3); err == nil {
		t.Error("nil set should fail")
	}
	if _, err := (Estimator{P: 0.5}).Top(sets, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := (Estimator{P: 0.5}).Top(sets, 3); err == nil {
		t.Error("empty samples should fail")
	}
	if _, err := (Estimator{P: 0.5}).PrivateTop(sets, 3, 0, stats.NewRNG(1)); err == nil {
		t.Error("epsilon=0 should fail")
	}
}

func TestTopExactAtFullSampling(t *testing.T) {
	t.Parallel()
	values := skewedValues()
	sets := drawSets(t, values, 4, 1, 3)
	top, err := Estimator{P: 1}.Top(sets, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30}
	for i, h := range top {
		if h.Value != want[i] {
			t.Fatalf("rank %d = %v, want %v (top: %+v)", i, h.Value, want[i], top)
		}
	}
	// At full sampling the counts are exact.
	if math.Abs(top[0].Count-4000) > 1e-9 || math.Abs(top[1].Count-2000) > 1e-9 {
		t.Errorf("counts = %v, %v; want 4000, 2000", top[0].Count, top[1].Count)
	}
}

func TestTopRecoversHeavyHittersFromSamples(t *testing.T) {
	t.Parallel()
	values := skewedValues()
	sets := drawSets(t, values, 5, 0.15, 7)
	top, err := Estimator{P: 0.15}.Top(sets, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := map[float64]bool{}
	for _, h := range top {
		got[h.Value] = true
	}
	for _, want := range []float64{10, 20, 30} {
		if !got[want] {
			t.Errorf("heavy hitter %v missing from %+v", want, top)
		}
	}
	// Frequency estimates within 6 sigma of truth.
	sigma := math.Sqrt(8 * 5 / (0.15 * 0.15))
	truths := map[float64]float64{10: 4000, 20: 2000, 30: 1000}
	for _, h := range top {
		if math.Abs(h.Count-truths[h.Value]) > 6*sigma {
			t.Errorf("count for %v = %v, want ~%v", h.Value, h.Count, truths[h.Value])
		}
	}
}

func TestTopKLargerThanCandidates(t *testing.T) {
	t.Parallel()
	values := []float64{5, 5, 5, 9, 9}
	set, err := sampling.Draw(values, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	top, err := Estimator{P: 1}.Top([]*sampling.SampleSet{set}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("top = %+v, want 2 hitters", top)
	}
}

func TestPrivateTopAccuracy(t *testing.T) {
	t.Parallel()
	values := skewedValues()
	sets := drawSets(t, values, 5, 0.2, 11)
	e := Estimator{P: 0.2}
	rng := stats.NewRNG(13)
	// With a healthy budget the dominant value must virtually always be
	// reported first.
	const trials = 30
	hits := 0
	for i := 0; i < trials; i++ {
		top, err := e.PrivateTop(sets, 3, 4.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(top) != 3 {
			t.Fatalf("private top = %+v", top)
		}
		if top[0].Value == 10 {
			hits++
		}
		// Released values must be distinct (peeling without replacement).
		seen := map[float64]bool{}
		for _, h := range top {
			if seen[h.Value] {
				t.Fatalf("duplicate hitter in %+v", top)
			}
			seen[h.Value] = true
		}
	}
	if hits < trials*8/10 {
		t.Errorf("dominant value reported first only %d/%d times", hits, trials)
	}
}

func TestPrivateTopBudgetMatters(t *testing.T) {
	t.Parallel()
	values := skewedValues()
	sets := drawSets(t, values, 5, 0.2, 17)
	e := Estimator{P: 0.2}
	correct := func(eps float64, seed int64) int {
		rng := stats.NewRNG(seed)
		hits := 0
		for i := 0; i < 40; i++ {
			top, err := e.PrivateTop(sets, 1, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			if top[0].Value == 10 {
				hits++
			}
		}
		return hits
	}
	tight := correct(4.0, 1)
	loose := correct(0.001, 2)
	if loose >= tight {
		t.Errorf("tiny budget should degrade selection: eps=4 hits %d, eps=0.001 hits %d", tight, loose)
	}
}
