// Package topk estimates the most frequent readings (heavy hitters) of
// the distributed dataset from the same rank-annotated samples the
// range-counting pipeline collects, and releases them under ε-DP with an
// iterative ("peeling") exponential mechanism.
//
// Frequency estimation is a point-range special case of RankCounting:
// the frequency of value v is the range count of [v, v], estimated
// unbiasedly from the boundary ranks. Candidates are the distinct
// sampled values — a value absent from every node's sample has expected
// frequency below ~1/p and cannot be a heavy hitter of interest at the
// rates the pipeline runs.
package topk

import (
	"fmt"
	"sort"

	"privrange/internal/dp"
	"privrange/internal/estimator"
	"privrange/internal/sampling"
	"privrange/internal/stats"
)

// Hitter is one reported heavy hitter.
type Hitter struct {
	// Value is the reading.
	Value float64
	// Count is its estimated frequency (unbiased; for private releases
	// this carries additional Laplace noise).
	Count float64
}

// Estimator finds heavy hitters over per-node sample sets drawn at rate
// P.
type Estimator struct {
	// P is the Bernoulli sampling rate the sets were drawn with.
	P float64
}

func (e Estimator) validate(sets []*sampling.SampleSet, k int) error {
	if e.P <= 0 || e.P > 1 {
		return fmt.Errorf("topk: sampling probability %v outside (0, 1]", e.P)
	}
	if len(sets) == 0 {
		return fmt.Errorf("topk: no sample sets")
	}
	for i, set := range sets {
		if set == nil {
			return fmt.Errorf("topk: nil sample set for node %d", i)
		}
	}
	if k < 1 {
		return fmt.Errorf("topk: k %d < 1", k)
	}
	return nil
}

// candidates returns the distinct sampled values with their estimated
// frequencies, descending by frequency (ties broken by value for
// determinism).
func (e Estimator) candidates(sets []*sampling.SampleSet) ([]Hitter, error) {
	distinct := map[float64]bool{}
	for _, set := range sets {
		for _, s := range set.Samples {
			distinct[s.Value] = true
		}
	}
	if len(distinct) == 0 {
		return nil, fmt.Errorf("topk: no samples collected")
	}
	rc := estimator.RankCounting{P: e.P}
	out := make([]Hitter, 0, len(distinct))
	for v := range distinct {
		freq, err := rc.Estimate(sets, estimator.Query{L: v, U: v})
		if err != nil {
			return nil, err
		}
		out = append(out, Hitter{Value: v, Count: freq})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out, nil
}

// Top returns the k values with the highest estimated frequencies
// (fewer when fewer distinct values were sampled). No privacy is spent —
// this is the broker-internal estimate.
func (e Estimator) Top(sets []*sampling.SampleSet, k int) ([]Hitter, error) {
	if err := e.validate(sets, k); err != nil {
		return nil, err
	}
	cands, err := e.candidates(sets)
	if err != nil {
		return nil, err
	}
	if k > len(cands) {
		k = len(cands)
	}
	return cands[:k], nil
}

// PrivateTop releases k heavy hitters under ε-DP: the budget splits
// evenly between selection and counts. Selection peels k values with the
// exponential mechanism (utility = estimated frequency, sensitivity 1/p,
// per-round budget ε/(2k)); each selected value's count is then released
// with Lap((1/p)/(ε/(2k))) noise. The composition across rounds is
// sequential, so the whole release is ε-DP before sampling amplification.
func (e Estimator) PrivateTop(sets []*sampling.SampleSet, k int, epsilon float64, rng *stats.RNG) ([]Hitter, error) {
	if err := e.validate(sets, k); err != nil {
		return nil, err
	}
	if epsilon <= 0 {
		return nil, fmt.Errorf("topk: epsilon %v must be positive", epsilon)
	}
	cands, err := e.candidates(sets)
	if err != nil {
		return nil, err
	}
	if k > len(cands) {
		k = len(cands)
	}
	perRound := epsilon / float64(2*k)
	selectMech, err := dp.NewExponentialMechanism(perRound, 1/e.P)
	if err != nil {
		return nil, err
	}
	countMech, err := dp.NewMechanism(perRound, 1/e.P)
	if err != nil {
		return nil, err
	}
	remaining := append([]Hitter(nil), cands...)
	out := make([]Hitter, 0, k)
	for round := 0; round < k; round++ {
		utilities := make([]float64, len(remaining))
		for i, c := range remaining {
			utilities[i] = c.Count
		}
		idx, err := selectMech.Select(utilities, rng)
		if err != nil {
			return nil, err
		}
		chosen := remaining[idx]
		chosen.Count = countMech.Perturb(chosen.Count, rng)
		out = append(out, chosen)
		remaining = append(remaining[:idx], remaining[idx+1:]...)
	}
	return out, nil
}
