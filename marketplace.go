package privrange

import (
	"fmt"
	"io"
	"sync"
	"time"

	"privrange/internal/core"
	"privrange/internal/dp"
	"privrange/internal/iot"
	"privrange/internal/market"
	"privrange/internal/pricing"
	"privrange/internal/telemetry"
)

// Tariff selects one of the library's arbitrage-avoiding pricing
// functions (§IV of the paper). Prices are ψ(V) of the answer variance
// V(α, δ) = (αn)²(1−δ).
type Tariff struct {
	// Base is a flat per-query fee (may be zero).
	Base float64
	// C scales the 1/V component; must be positive. The neutral tariff
	// π = C/V is the arbitrage-avoidance boundary: set Base > 0 to make
	// every averaging attack strictly unprofitable.
	C float64
}

func (t Tariff) internal() (pricing.Function, error) {
	if t.C <= 0 {
		return nil, fmt.Errorf("privrange: tariff C %v must be positive", t.C)
	}
	if t.Base < 0 {
		return nil, fmt.Errorf("privrange: tariff base %v must be non-negative", t.Base)
	}
	if t.Base == 0 {
		return pricing.InverseVariance{C: t.C}, nil
	}
	return pricing.BaseFeePlusInverse{Base: t.Base, C: t.C}, nil
}

// Quote is a priced offer for an accuracy level.
type Quote struct {
	// Price is what the broker charges for one answer at this accuracy.
	Price float64
	// Variance is the answer variance the price is derived from.
	Variance float64
}

// PurchaseResult is a completed marketplace transaction.
type PurchaseResult struct {
	// Value is the private answer (raw, unbiased — may fall outside
	// [0, n]); Clamped truncates it for display.
	Value   float64
	Clamped float64
	// Price is the amount charged.
	Price float64
	// ReceiptID identifies the sale in the broker's ledger.
	ReceiptID int64
	// EpsilonPrime is the effective privacy budget the answer consumed.
	EpsilonPrime float64
}

// Marketplace is a multi-dataset data-trading broker: it registers
// datasets, quotes and sells private answers under an arbitrage-avoiding
// tariff, and can serve remote consumers over TCP.
type Marketplace struct {
	broker  *market.Broker
	wallets *market.Wallets
	// coalescer, when non-nil, folds concurrent remote buys into batch
	// sales (see EnableCoalescing). Guarded by teleMu for enable/close.
	coalescer *market.Coalescer

	// teleMu guards the registry and the dataset handle map used to
	// attach telemetry to datasets added before or after
	// EnableTelemetry.
	teleMu   sync.Mutex
	registry *telemetry.Registry
	handles  map[string]datasetHandles
}

// datasetHandles keeps the per-dataset components the facade built in
// AddDataset so late telemetry enablement can instrument them.
type datasetHandles struct {
	engine     *core.Engine
	network    *iot.Network
	accountant *dp.Accountant
}

// NewMarketplace opens a broker with the given tariff. The tariff is
// audited for arbitrage-avoidance; an exploitable one is refused.
func NewMarketplace(t Tariff) (*Marketplace, error) {
	fn, err := t.internal()
	if err != nil {
		return nil, err
	}
	broker, err := market.NewBroker(fn)
	if err != nil {
		return nil, err
	}
	return &Marketplace{broker: broker, handles: make(map[string]datasetHandles)}, nil
}

// EnableTelemetry turns on the marketplace's metrics registry and
// instruments every layer: the broker (sales, protocol, transport),
// each dataset's query engine (latency, outcomes, traces), its IoT
// network (rounds, coverage, cost, breaker events) and its privacy
// accountant (ε spend). Datasets added later are instrumented on
// registration. Idempotent; ServeOps calls it implicitly. Everything
// exported lives outside the privacy boundary — released aggregates
// and operational counts only (see DESIGN.md §10).
func (m *Marketplace) EnableTelemetry() {
	m.enableTelemetry()
}

func (m *Marketplace) enableTelemetry() *telemetry.Registry {
	m.teleMu.Lock()
	defer m.teleMu.Unlock()
	if m.registry != nil {
		return m.registry
	}
	m.registry = telemetry.NewRegistry()
	m.broker.SetTelemetry(market.NewMetrics(m.registry))
	for name, h := range m.handles {
		m.instrumentLocked(name, h)
	}
	return m.registry
}

// instrumentLocked attaches one dataset's components to the registry.
// The dataset name is catalog metadata (public by construction), so it
// is a safe label value. Callers hold teleMu with registry non-nil.
func (m *Marketplace) instrumentLocked(name string, h datasetHandles) {
	label := telemetry.L("dataset", name)
	h.engine.SetTelemetry(core.NewMetrics(m.registry, label))
	h.network.SetTelemetry(iot.NewMetrics(m.registry, label))
	h.accountant.Instrument(
		m.registry.Gauge("privrange_dp_epsilon_spent", "cumulative effective privacy budget released", label),
		m.registry.Gauge("privrange_dp_epsilon_remaining", "budget left before the dataset cap (absent while uncapped)", label),
		m.registry.Counter("privrange_dp_releases_total", "answers charged to the accountant", label),
	)
}

// EnableTracing turns on head-sampled distributed tracing: every n-th
// request without a wire trace context starts a fresh trace (the
// sampling decision is a deterministic counter — no randomness, no
// clock — so tracing can never perturb released answers), and sampled
// requests emit spans for every stage — handler, coalesced batch,
// engine phases, per-shard scatter, WAL append/fsync — retrievable as
// JSON from the ops endpoint's /traces route. Requests arriving with a
// sampled wire context (market.WithTracing clients) are always traced
// regardless of n. n <= 0 disables head sampling; wire-joined traces
// still record. Enables telemetry if needed. Idempotent.
func (m *Marketplace) EnableTracing(sampleN int) {
	m.enableTelemetry().SetTraceSampling(sampleN)
}

// SLO declares one service-level objective over buys.
type SLO struct {
	// Name labels the objective's series, e.g. "buy_latency".
	// Defaults to "buy".
	Name string
	// Target is the required good-request fraction, e.g. 0.99.
	Target float64
	// Threshold bounds a good buy's end-to-end latency; zero declares a
	// pure availability objective (any completed sale is good).
	Threshold time.Duration
}

// DeclareBuySLO scores every buy (sold or rejected) against the
// objective and exports multi-window error-budget burn-rate gauges
// (privrange_slo_burn_rate{slo,window}, windows 5m and 1h) plus
// lifetime good/total counters on the ops endpoint. Enables telemetry
// if needed. Declaring again replaces the scored objective.
func (m *Marketplace) DeclareBuySLO(s SLO) {
	reg := m.enableTelemetry()
	name := s.Name
	if name == "" {
		name = "buy"
	}
	obj := reg.SLO(telemetry.Objective{Name: name, Target: s.Target, Threshold: s.Threshold})
	m.broker.Telemetry().SetBuySLO(obj)
}

// OpsServer is a running operational HTTP endpoint: Prometheus metrics
// at /metrics, a JSON state snapshot at /snapshot and pprof under
// /debug/pprof/. It is separate from the trading TCP endpoint — bind
// it to an operator-only address.
type OpsServer struct {
	srv *telemetry.OpsServer
}

// ServeOps starts the operational endpoint on addr (use "127.0.0.1:0"
// for an ephemeral port), enabling telemetry first if needed.
func (m *Marketplace) ServeOps(addr string) (*OpsServer, error) {
	reg := m.enableTelemetry()
	srv, err := telemetry.Serve(addr, reg)
	if err != nil {
		return nil, err
	}
	return &OpsServer{srv: srv}, nil
}

// Addr returns the ops endpoint's bound address.
func (s *OpsServer) Addr() string { return s.srv.Addr() }

// Close shuts the ops endpoint down.
func (s *OpsServer) Close() error { return s.srv.Close() }

// AddDataset registers readings for sale under the given name, spread
// across a simulated IoT deployment per opt.
func (m *Marketplace) AddDataset(name string, values []float64, opt Options) error {
	if len(values) == 0 {
		return fmt.Errorf("privrange: dataset %q is empty", name)
	}
	nodes := opt.Nodes
	if nodes == 0 {
		nodes = 16
	}
	if nodes < 1 || nodes > len(values) {
		return fmt.Errorf("privrange: node count %d outside [1, %d]", nodes, len(values))
	}
	topo := iot.Flat
	if opt.Tree {
		topo = iot.Tree
	}
	network, err := iot.New(partition(values, nodes), iot.Config{Seed: opt.Seed, Topology: topo, Faults: opt.Faults})
	if err != nil {
		return err
	}
	accountant, err := dp.NewAccountant(opt.TotalBudget)
	if err != nil {
		return err
	}
	policy := core.Strict
	if opt.BestEffort {
		policy = core.BestEffort
	}
	engine, err := core.New(network,
		core.WithSeed(opt.Seed+1),
		core.WithAccountant(accountant),
		core.WithAnswerCache(opt.CacheAnswers),
		core.WithDegradationPolicy(policy),
	)
	if err != nil {
		return err
	}
	if err := m.broker.Register(name, engine, len(values), nodes); err != nil {
		return err
	}
	m.teleMu.Lock()
	defer m.teleMu.Unlock()
	h := datasetHandles{engine: engine, network: network, accountant: accountant}
	m.handles[name] = h
	if m.registry != nil {
		m.instrumentLocked(name, h)
	}
	return nil
}

// Quote prices one answer at the given accuracy on a dataset.
func (m *Marketplace) Quote(dataset string, acc Accuracy) (Quote, error) {
	price, variance, err := m.broker.Quote(dataset, acc.internal())
	if err != nil {
		return Quote{}, err
	}
	return Quote{Price: price, Variance: variance}, nil
}

// Buy sells one private (α, δ)-range-counting answer over [l, u] on the
// dataset to the named customer and records the sale.
func (m *Marketplace) Buy(customer, dataset string, l, u float64, acc Accuracy) (*PurchaseResult, error) {
	resp, err := m.broker.Buy(market.Request{
		Dataset:  dataset,
		Customer: customer,
		L:        l,
		U:        u,
		Alpha:    acc.Alpha,
		Delta:    acc.Delta,
	})
	if err != nil {
		return nil, err
	}
	result := &PurchaseResult{
		Value:        resp.Value,
		Clamped:      resp.Clamped,
		Price:        resp.Price,
		EpsilonPrime: resp.EpsilonPrime,
	}
	if resp.Receipt != nil {
		result.ReceiptID = resp.Receipt.ID
	}
	return result, nil
}

// EnablePrepaid switches the marketplace to prepaid customer accounts:
// every Buy (local or remote) debits the customer's balance first and
// fails on insufficient funds. Idempotent.
func (m *Marketplace) EnablePrepaid() {
	if m.wallets == nil {
		m.wallets = &market.Wallets{}
		m.broker.AttachWallets(m.wallets)
	}
}

// Deposit credits a prepaid customer account. It returns an error when
// prepaid mode is not enabled. With durability on, the grant is
// journaled and fsynced before this returns.
func (m *Marketplace) Deposit(customer string, amount float64) error {
	if m.wallets == nil {
		return fmt.Errorf("privrange: marketplace runs in invoice mode; call EnablePrepaid first")
	}
	return m.broker.Deposit(customer, amount)
}

// Balance returns a prepaid customer's balance (0 in invoice mode).
func (m *Marketplace) Balance(customer string) float64 {
	if m.wallets == nil {
		return 0
	}
	return m.wallets.Balance(customer)
}

// SuspiciousPattern reports one repeated-purchase pattern from the
// broker's ledger audit (the observable footprint of an averaging
// attack).
type SuspiciousPattern struct {
	Customer  string
	Dataset   string
	L, U      float64
	Alpha     float64
	Delta     float64
	Purchases int
	TotalPaid float64
}

// Audit scans the ledger for customers repeating the same purchase three
// or more times.
func (m *Marketplace) Audit() []SuspiciousPattern {
	sus := m.broker.Audit()
	out := make([]SuspiciousPattern, len(sus))
	for i, s := range sus {
		out[i] = SuspiciousPattern{
			Customer:  s.Customer,
			Dataset:   s.Dataset,
			L:         s.L,
			U:         s.U,
			Alpha:     s.Alpha,
			Delta:     s.Delta,
			Purchases: s.Count,
			TotalPaid: s.TotalPaid,
		}
	}
	return out
}

// PrivacySpent returns the cumulative effective privacy budget released
// for one dataset across all sales.
func (m *Marketplace) PrivacySpent(dataset string) float64 {
	return m.broker.Ledger().PrivacySpent(dataset)
}

// SetCustomerPrivacyCap bounds the cumulative effective privacy budget
// any single customer may extract from any single dataset. Zero removes
// the cap.
func (m *Marketplace) SetCustomerPrivacyCap(epsilon float64) error {
	return m.broker.SetCustomerPrivacyCap(epsilon)
}

// SaveState serializes the marketplace's trading state (ledger,
// prepaid balances, per-dataset ε bookkeeping) as JSON for restart
// durability. The capture is consistent: in-flight purchases complete
// first, so a receipt never appears without its debit or vice versa.
func (m *Marketplace) SaveState(w io.Writer) error { return m.broker.SaveState(w) }

// RestoreState reloads a snapshot produced by SaveState. Enable prepaid
// mode first when the snapshot carries balances. It refuses a
// marketplace that already recorded sales.
func (m *Marketplace) RestoreState(r io.Reader) error { return m.broker.RestoreState(r) }

// EnableDurability turns on crash-consistent accounting: every wallet
// deposit, sale debit, ε spend and receipt is appended to a
// write-ahead log under dir and fsynced (group commit) before the
// operation is acknowledged, and the log periodically compacts into an
// atomically-replaced snapshot. Any state a previous incarnation left
// in dir is recovered first — money, receipts and released ε come back
// exactly once, even after a crash mid-sale. Call it on a marketplace
// that has not sold anything yet, after EnablePrepaid (recovered
// balances need wallets) and before AddDataset (each dataset's Σε′
// restores as it registers).
func (m *Marketplace) EnableDurability(dir string) error {
	return m.broker.EnableDurability(dir)
}

// CloseDurability compacts the log into the snapshot and closes the
// WAL; call on clean shutdown so the next boot recovers from the
// snapshot alone. The marketplace refuses further mutations afterwards.
func (m *Marketplace) CloseDurability() error { return m.broker.CloseDurability() }

// Revenue returns the broker's total take so far.
func (m *Marketplace) Revenue() float64 { return m.broker.Ledger().Revenue() }

// Purchases returns how many sales the ledger holds.
func (m *Marketplace) Purchases() int { return m.broker.Ledger().Purchases() }

// SpentBy returns one customer's total spend.
func (m *Marketplace) SpentBy(customer string) float64 {
	return m.broker.Ledger().SpentBy(customer)
}

// CoalesceConfig tunes EnableCoalescing; zero values pick the
// defaults (1ms window, 64-buy batches).
type CoalesceConfig struct {
	// Window is the longest a buy may wait for companions before its
	// batch executes.
	Window time.Duration
	// MaxBatch seals a batch early once this many buys joined.
	MaxBatch int
}

// EnableCoalescing folds concurrent remote buys for the same dataset
// and accuracy into single batch sales: each buy waits at most the
// window, then one estimation pass answers the whole group. Released
// values, receipts, balances and ε accounting are bit-for-bit
// indistinguishable from serial sales — the trade is purely latency
// (≤ window) for throughput. Idempotent per marketplace; call
// DisableCoalescing on shutdown to drain the batching stage.
func (m *Marketplace) EnableCoalescing(cfg CoalesceConfig) {
	m.teleMu.Lock()
	defer m.teleMu.Unlock()
	if m.coalescer != nil {
		return
	}
	m.coalescer = m.broker.EnableCoalescing(market.CoalesceConfig{
		Window:   cfg.Window,
		MaxBatch: cfg.MaxBatch,
	})
}

// DisableCoalescing drains and stops the batching stage; buys in
// flight settle first, later buys take the serial path.
func (m *Marketplace) DisableCoalescing() {
	m.teleMu.Lock()
	co := m.coalescer
	m.coalescer = nil
	m.teleMu.Unlock()
	if co != nil {
		co.Close()
	}
}

// MarketServer is a running TCP endpoint for a Marketplace.
type MarketServer struct {
	srv *market.Server
}

// ServeConfig tunes ServeWith; zero values pick the transport
// defaults (2min idle timeout, 64-deep pipeline window, 1024 admitted
// requests module-wide).
type ServeConfig struct {
	// IdleTimeout cuts connections that go silent (or stop draining
	// responses) for this long. Negative disables the deadline.
	IdleTimeout time.Duration
	// PipelineDepth bounds requests in flight per connection; a client
	// pipelining past it is throttled by TCP flow control.
	PipelineDepth int
	// MaxInFlight caps admitted requests across all connections;
	// excess requests are refused with a retryable protocol error.
	// Negative disables admission control.
	MaxInFlight int
}

// Serve exposes the marketplace on a TCP address (use "127.0.0.1:0" for
// an ephemeral port) with default transport settings. The protocol is
// newline-delimited JSON; see internal/market for the message schema
// and a ready-made client.
func (m *Marketplace) Serve(addr string) (*MarketServer, error) {
	return m.ServeWith(addr, ServeConfig{})
}

// ServeWith exposes the marketplace on a TCP address with explicit
// transport settings (pipelining window, admission cap, idle timeout).
func (m *Marketplace) ServeWith(addr string, cfg ServeConfig) (*MarketServer, error) {
	var opts []market.ServerOption
	if cfg.IdleTimeout != 0 {
		opts = append(opts, market.WithIdleTimeout(cfg.IdleTimeout))
	}
	if cfg.PipelineDepth > 0 {
		opts = append(opts, market.WithPipelineDepth(cfg.PipelineDepth))
	}
	if cfg.MaxInFlight != 0 {
		opts = append(opts, market.WithMaxInFlight(cfg.MaxInFlight))
	}
	srv, err := market.Serve(m.broker, addr, opts...)
	if err != nil {
		return nil, err
	}
	return &MarketServer{srv: srv}, nil
}

// Addr returns the server's bound address.
func (s *MarketServer) Addr() string { return s.srv.Addr() }

// Close shuts the server down and drains its connections.
func (s *MarketServer) Close() error { return s.srv.Close() }
