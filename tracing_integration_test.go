package privrange_test

// End-to-end distributed-tracing scenario, run under -race in CI: a
// traced client stamps trace contexts onto wire requests, the broker
// joins them, and /traces shows the whole causal chain — client span
// id as the buy span's parent, engine phases under the buy, WAL
// append/fsync under the same trace. A second phase drives pipelined
// clients against a coalescing broker and checks span accounting (no
// lost or cross-wired spans), and a third proves released answers are
// bit-identical with tracing on and off.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"testing"

	"privrange"
	"privrange/internal/dataset"
	"privrange/internal/market"
	"privrange/internal/telemetry"
)

// tracedWire mirrors the /traces JSON payload.
type tracedWire struct {
	Emitted  uint64 `json:"spans_emitted"`
	Retained int    `json:"spans_retained"`
	Spans    []struct {
		TraceID string            `json:"trace_id"`
		SpanID  string            `json:"span_id"`
		Parent  string            `json:"parent_id"`
		Name    string            `json:"name"`
		DurNS   int64             `json:"duration_ns"`
		Attrs   map[string]string `json:"attrs"`
		Links   []string          `json:"links"`
	} `json:"spans"`
}

func hexID(v uint64) string { return fmt.Sprintf("%016x", v) }

func fetchTraces(t *testing.T, opsAddr string) tracedWire {
	t.Helper()
	resp, err := http.Get("http://" + opsAddr + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var tw tracedWire
	if err := json.Unmarshal(body, &tw); err != nil {
		t.Fatalf("decode /traces: %v\n%s", err, body)
	}
	return tw
}

func tracedMarketplace(t *testing.T, durable bool) (*privrange.Marketplace, *privrange.MarketServer, *privrange.OpsServer) {
	t.Helper()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 21, Records: 6000})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := privrange.NewMarketplace(privrange.Tariff{Base: 1, C: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	mp.EnableTracing(64)
	if durable {
		if err := mp.EnableDurability(t.TempDir()); err != nil {
			t.Fatal(err)
		}
	}
	if err := mp.AddDataset("ozone", series.Values, privrange.Options{Nodes: 8, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	srv, err := mp.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ops, err := mp.ServeOps("127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { ops.Close(); srv.Close() })
	return mp, srv, ops
}

// TestTracingSingleBuyEndToEnd follows one sampled buy through every
// layer: the client's root span id must be the buy span's parent on
// the server, the engine phases must hang under the buy, and the WAL
// append and group-commit fsync must appear in the same trace.
func TestTracingSingleBuyEndToEnd(t *testing.T) {
	t.Parallel()
	_, srv, ops := tracedMarketplace(t, true)

	clientBuf := telemetry.NewSpanBuf(64)
	client, err := market.Dial(srv.Addr(), market.WithTracing(1, clientBuf))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Buy(market.Request{Dataset: "ozone", Customer: "ada", L: 30, U: 90, Alpha: 0.1, Delta: 0.6}); err != nil {
		t.Fatal(err)
	}

	roots := clientBuf.SnapshotSpans()
	if len(roots) != 1 || roots[0].Name != "client.request" {
		t.Fatalf("client buf: %+v, want one client.request span", roots)
	}
	traceID, rootID := hexID(roots[0].TraceID), hexID(roots[0].SpanID)

	tw := fetchTraces(t, ops.Addr())
	spans := make(map[string]struct{ id, parent string })
	for _, s := range tw.Spans {
		if s.TraceID != traceID {
			continue
		}
		spans[s.Name] = struct{ id, parent string }{s.SpanID, s.Parent}
	}
	buy, ok := spans["market.buy"]
	if !ok {
		t.Fatalf("trace %s has no market.buy span on the server: %+v", traceID, spans)
	}
	if buy.parent != rootID {
		t.Fatalf("market.buy parent = %s, want the client root span %s", buy.parent, rootID)
	}
	answer, ok := spans["core.answer"]
	if !ok {
		t.Fatalf("trace %s has no core.answer span: %+v", traceID, spans)
	}
	if answer.parent != buy.id {
		t.Fatalf("core.answer parent = %s, want market.buy span %s", answer.parent, buy.id)
	}
	for _, phase := range []string{"core.answer.sample_lookup", "core.answer.estimate", "core.answer.perturb"} {
		sp, ok := spans[phase]
		if !ok {
			t.Fatalf("trace %s missing engine phase %s: %+v", traceID, phase, spans)
		}
		if sp.parent != answer.id {
			t.Fatalf("%s parent = %s, want core.answer span %s", phase, sp.parent, answer.id)
		}
	}
	for _, wal := range []string{"wal.append", "wal.fsync"} {
		sp, ok := spans[wal]
		if !ok {
			t.Fatalf("trace %s missing durability span %s: %+v", traceID, wal, spans)
		}
		if sp.parent != buy.id {
			t.Fatalf("%s parent = %s, want market.buy span %s", wal, sp.parent, buy.id)
		}
	}
}

// TestTracingPipelinedCoalescedAccounting drives pipelined traced
// clients against a coalescing broker and audits the span stream: one
// market.buy span per buy, each parented on a distinct client root,
// never cross-wired between concurrent requests; when sales folded
// into batches, the batch spans must link the folded sales' spans.
func TestTracingPipelinedCoalescedAccounting(t *testing.T) {
	t.Parallel()
	mp, srv, ops := tracedMarketplace(t, false)
	mp.EnableCoalescing(privrange.CoalesceConfig{})
	defer mp.DisableCoalescing()

	const clients, buysPer = 3, 8
	clientBuf := telemetry.NewSpanBuf(256)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		cl, err := market.Dial(srv.Addr(), market.WithPipelining(), market.WithTracing(1, clientBuf))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for i := 0; i < buysPer; i++ {
			wg.Add(1)
			go func(cl *market.Client, i int) {
				defer wg.Done()
				req := market.Request{Dataset: "ozone", Customer: "bob", L: 20, U: 60 + float64(i), Alpha: 0.1, Delta: 0.6}
				if _, err := cl.Buy(req); err != nil {
					t.Error(err)
				}
			}(cl, i)
		}
	}
	wg.Wait()

	const total = clients * buysPer
	rootByTrace := make(map[string]string) // trace id -> client root span id
	for _, r := range clientBuf.SnapshotSpans() {
		rootByTrace[hexID(r.TraceID)] = hexID(r.SpanID)
	}
	if len(rootByTrace) != total {
		t.Fatalf("client emitted %d roots, want %d", len(rootByTrace), total)
	}

	tw := fetchTraces(t, ops.Addr())
	buySpans := make(map[string]string) // span id -> trace id
	var batchLinks []string
	for _, s := range tw.Spans {
		switch s.Name {
		case "market.buy":
			root, ours := rootByTrace[s.TraceID]
			if !ours {
				continue
			}
			if s.Parent != root {
				t.Fatalf("buy span in trace %s parented on %s, want client root %s (cross-wired)", s.TraceID, s.Parent, root)
			}
			buySpans[s.SpanID] = s.TraceID
		case "market.batch_sale":
			batchLinks = append(batchLinks, s.Links...)
		}
	}
	if len(buySpans) != total {
		t.Fatalf("server shows %d market.buy spans for our traces, want %d (lost spans; emitted=%d retained=%d)",
			len(buySpans), total, tw.Emitted, tw.Retained)
	}
	// Folding is timing-dependent, but whenever the broker reports
	// batches, the batch spans must link back to real sale spans.
	if folded := serverCounter(t, ops.Addr(), "privrange_market_coalesce_folded_total"); folded > 0 {
		if len(batchLinks) == 0 {
			t.Fatalf("%d sales folded into batches but no batch span carries links", folded)
		}
		for _, link := range batchLinks {
			id := link[17:33] // links are serialized contexts: trace-span-flags
			if _, ok := buySpans[id]; !ok {
				t.Fatalf("batch link %s does not point at a known sale span", link)
			}
		}
	}
}

// TestTracingAnswersBitIdentical buys the same sequence from two
// identically seeded marketplaces — one fully traced, one with
// tracing off — and requires bit-identical released answers: tracing
// must never touch the noise stream or estimation order.
func TestTracingAnswersBitIdentical(t *testing.T) {
	t.Parallel()
	build := func(traceN int) (*privrange.MarketServer, func()) {
		series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 33, Records: 5000})
		if err != nil {
			t.Fatal(err)
		}
		mp, err := privrange.NewMarketplace(privrange.Tariff{Base: 1, C: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		mp.EnableTelemetry()
		if traceN > 0 {
			mp.EnableTracing(traceN)
		}
		if err := mp.AddDataset("ozone", series.Values, privrange.Options{Nodes: 8, Seed: 9}); err != nil {
			t.Fatal(err)
		}
		srv, err := mp.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return srv, func() { srv.Close() }
	}
	buyAll := func(srv *privrange.MarketServer, traced bool) []uint64 {
		var opts []market.DialOption
		if traced {
			opts = append(opts, market.WithTracing(1, telemetry.NewSpanBuf(64)))
		}
		client, err := market.Dial(srv.Addr(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		var out []uint64
		for i := 0; i < 6; i++ {
			resp, err := client.Buy(market.Request{
				Dataset: "ozone", Customer: "cyd",
				L: 10 + float64(i), U: 70 + 3*float64(i), Alpha: 0.1, Delta: 0.6,
			})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, math.Float64bits(resp.Value))
		}
		return out
	}

	srvTraced, closeTraced := build(1)
	defer closeTraced()
	srvPlain, closePlain := build(0)
	defer closePlain()

	traced := buyAll(srvTraced, true)
	plain := buyAll(srvPlain, false)
	for i := range traced {
		if traced[i] != plain[i] {
			t.Fatalf("buy %d: traced answer bits %x != untraced %x — tracing perturbed the release path", i, traced[i], plain[i])
		}
	}
}

// serverCounter scrapes one counter total from the ops snapshot.
func serverCounter(t *testing.T, opsAddr, name string) uint64 {
	t.Helper()
	resp, err := http.Get("http://" + opsAddr + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value uint64 `json:"value"`
		} `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, c := range snap.Counters {
		if c.Name == name {
			sum += c.Value
		}
	}
	return sum
}
