package privrange_test

// End-to-end observability scenario: a marketplace with telemetry
// enabled sells answers over TCP while the operational HTTP endpoint
// is scraped like a real monitoring stack would — Prometheus text for
// the query latency histogram, ε-spend gauges and collection coverage,
// and the JSON snapshot for purchase traces. Run under -race in CI.

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"privrange"
	"privrange/internal/dataset"
	"privrange/internal/market"
)

func TestTelemetryOpsEndpointEndToEnd(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 11, Records: 6000})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := privrange.NewMarketplace(privrange.Tariff{Base: 1, C: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	// Ops endpoint first: the dataset registered afterwards must be
	// instrumented on registration.
	ops, err := mp.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()
	if err := mp.AddDataset("ozone", series.Values, privrange.Options{Nodes: 8, Seed: 3}); err != nil {
		t.Fatal(err)
	}

	srv, err := mp.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := market.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const buys = 3
	for i := 0; i < buys; i++ {
		req := market.Request{Dataset: "ozone", Customer: "carol", L: 30, U: 80 + float64(i), Alpha: 0.1, Delta: 0.6}
		if _, err := client.Buy(req); err != nil {
			t.Fatal(err)
		}
	}

	scrape := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + ops.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := scrape("/metrics")

	// The query latency histogram saw every purchase.
	count := promValue(t, metrics, `privrange_core_query_seconds_count{dataset="ozone"}`)
	if count != buys {
		t.Fatalf("latency histogram count = %v, want %d\n%s", count, buys, metrics)
	}
	if !strings.Contains(metrics, `privrange_core_query_seconds_bucket{dataset="ozone",le="+Inf"}`) {
		t.Fatalf("latency histogram has no buckets:\n%s", metrics)
	}

	// ε-spend matches the ledger exactly.
	spent := promValue(t, metrics, `privrange_dp_epsilon_spent{dataset="ozone"}`)
	if want := mp.PrivacySpent("ozone"); spent <= 0 || absDiff(spent, want) > 1e-9 {
		t.Fatalf("epsilon spent gauge = %v, ledger says %v", spent, want)
	}

	// The collection layer published its coverage (fully reachable here).
	if cov := promValue(t, metrics, `privrange_iot_coverage{dataset="ozone"}`); cov != 1 {
		t.Fatalf("coverage = %v, want 1", cov)
	}

	// The market layer counted the sales and the transport connection.
	if sold := promValue(t, metrics, `privrange_market_purchases_total`); sold != buys {
		t.Fatalf("purchases = %v, want %d", sold, buys)
	}
	if active := promValue(t, metrics, `privrange_market_connections_active`); active != 1 {
		t.Fatalf("active connections = %v, want 1", active)
	}

	// The JSON snapshot carries purchase traces with the pipeline's
	// phase spans.
	var snap struct {
		Traces []struct {
			Op    string `json:"op"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(scrape("/snapshot")), &snap); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ops_, phases := map[string]bool{}, map[string]bool{}
	for _, tr := range snap.Traces {
		ops_[tr.Op] = true
		for _, sp := range tr.Spans {
			phases[sp.Name] = true
		}
	}
	if !ops_["market.buy"] || !ops_["core.answer"] {
		t.Fatalf("snapshot traces missing pipeline ops: %v", ops_)
	}
	for _, want := range []string{"price", "answer", "sample_lookup", "optimize", "estimate", "perturb"} {
		if !phases[want] {
			t.Fatalf("snapshot traces missing phase %q: %v", want, phases)
		}
	}
}

// promValue extracts one sample's value from Prometheus text
// exposition by its exact series name (including the label set).
func promValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindStringSubmatch(exposition)
	if m == nil {
		t.Fatalf("series %q not found in exposition:\n%s", series, exposition)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %q value %q: %v", series, m[1], err)
	}
	return v
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
