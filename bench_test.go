package privrange

// Benchmark harness: one testing.B target per figure in the paper's
// evaluation (the paper has no numeric tables; Figs 2–6 are the
// artefacts) plus the repository's ablations and end-to-end
// micro-benchmarks. Each figure bench regenerates the figure's series
// and logs the table, so
//
//	go test -bench=Fig -benchmem
//
// reproduces the whole evaluation; see EXPERIMENTS.md for the measured
// output and its comparison against the paper.

import (
	"testing"

	"privrange/internal/bench"
	"privrange/internal/dataset"
)

// benchCfg is the full-size configuration every figure bench runs at.
func benchCfg() bench.Config {
	return bench.Config{Seed: 1, Trials: 5, K: 10}
}

func runFigure(b *testing.B, name string) {
	b.Helper()
	var table string
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(name, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		table = res.Table()
	}
	b.Log("\n" + table)
}

// BenchmarkFig2SamplingAccuracy regenerates Fig 2: max relative error vs
// sampling probability p ∈ [0.0173, 0.4048] (noise-free estimator).
func BenchmarkFig2SamplingAccuracy(b *testing.B) { runFigure(b, "fig2") }

// BenchmarkFig3AlphaDelta regenerates Fig 3: error-budget utilization as
// α and δ co-vary over [0.08, 0.8] with p from Theorem 3.3.
func BenchmarkFig3AlphaDelta(b *testing.B) { runFigure(b, "fig3") }

// BenchmarkFig4SamplingVsSize regenerates Fig 4: required sampling
// probability vs data size (α=0.055, δ=0.5).
func BenchmarkFig4SamplingVsSize(b *testing.B) { runFigure(b, "fig4") }

// BenchmarkFig5EpsilonAccuracy regenerates Fig 5: private-pipeline error
// vs ε ∈ [0.01, 8] at p=0.4 across all five pollutant series.
func BenchmarkFig5EpsilonAccuracy(b *testing.B) { runFigure(b, "fig5") }

// BenchmarkFig6SamplingPrivacy regenerates Fig 6: private-pipeline error
// vs p under several privacy budgets.
func BenchmarkFig6SamplingPrivacy(b *testing.B) { runFigure(b, "fig6") }

// BenchmarkAblationEstimators compares RankCounting vs BasicCounting
// error spread across range widths (the §III-A variance claim).
func BenchmarkAblationEstimators(b *testing.B) { runFigure(b, "ablation-estimators") }

// BenchmarkAblationOptimizer maps the ε′ landscape over the internal α′
// split (the problem-(3) search space).
func BenchmarkAblationOptimizer(b *testing.B) { runFigure(b, "ablation-optimizer") }

// BenchmarkAblationArbitrage measures the adversary's best cost ratio on
// safe vs unsafe tariffs (Theorem 4.2 / Example 4.1).
func BenchmarkAblationArbitrage(b *testing.B) { runFigure(b, "ablation-arbitrage") }

// BenchmarkAblationTopology compares flat vs tree communication bytes as
// the deployment grows.
func BenchmarkAblationTopology(b *testing.B) { runFigure(b, "ablation-topology") }

// BenchmarkAblationWorkloads reports estimator error across workload
// shapes.
func BenchmarkAblationWorkloads(b *testing.B) { runFigure(b, "ablation-workloads") }

// BenchmarkAblationHistogram quantifies the parallel-composition
// advantage of the histogram release over per-band sequential queries.
func BenchmarkAblationHistogram(b *testing.B) { runFigure(b, "ablation-histogram") }

// BenchmarkAblationQuantile reports private-quantile rank error across
// privacy budgets.
func BenchmarkAblationQuantile(b *testing.B) { runFigure(b, "ablation-quantile") }

// BenchmarkSystemCount measures one end-to-end private query (sampling
// already collected) through the public API.
func BenchmarkSystemCount(b *testing.B) {
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(series.Values, Options{Nodes: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	acc := Accuracy{Alpha: 0.05, Delta: 0.9}
	if _, err := sys.Count(50, 100, acc); err != nil { // prime collection
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Count(50, 100, acc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemCollection measures the full sampling protocol: network
// construction plus first collection at the Theorem 3.3 rate.
func BenchmarkSystemCollection(b *testing.B) {
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	acc := Accuracy{Alpha: 0.05, Delta: 0.9}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(series.Values, Options{Nodes: 16, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Count(50, 100, acc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarketplaceBuy measures one priced sale through the trading
// layer (in-process).
func BenchmarkMarketplaceBuy(b *testing.B) {
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mp, err := NewMarketplace(Tariff{Base: 1, C: 1e9})
	if err != nil {
		b.Fatal(err)
	}
	if err := mp.AddDataset("ozone", series.Values, Options{Nodes: 16, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	acc := Accuracy{Alpha: 0.05, Delta: 0.9}
	if _, err := mp.Buy("bench", "ozone", 50, 100, acc); err != nil { // prime
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mp.Buy("bench", "ozone", 50, 100, acc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBaseline compares the sampling pipeline against the
// dyadic hierarchical-decomposition baseline at a fixed total budget as
// the number of sold queries grows (the crossover experiment).
func BenchmarkAblationBaseline(b *testing.B) { runFigure(b, "ablation-baseline") }
