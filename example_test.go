package privrange_test

import (
	"fmt"
	"log"

	"privrange"
	"privrange/internal/dataset"
)

// ExampleSystem_Count shows the core flow: one differentially-private
// (α, δ)-range count over a simulated deployment.
func ExampleSystem_Count() {
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 1, Records: 8000})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := privrange.NewSystem(series.Values, privrange.Options{Nodes: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ans, err := sys.Count(50, 100, privrange.Accuracy{Alpha: 0.05, Delta: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	truth, err := series.RangeCount(50, 100)
	if err != nil {
		log.Fatal(err)
	}
	withinContract := ans.Value >= float64(truth)-0.05*float64(sys.N()) &&
		ans.Value <= float64(truth)+0.05*float64(sys.N())
	fmt.Println("answer within the (alpha, delta) contract:", withinContract)
	fmt.Println("effective budget below base budget:", ans.EpsilonPrime < ans.Epsilon)
	// Output:
	// answer within the (alpha, delta) contract: true
	// effective budget below base budget: true
}

// ExampleMarketplace shows the trading flow: quote, fund, buy.
func ExampleMarketplace() {
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 2, Records: 8000})
	if err != nil {
		log.Fatal(err)
	}
	mp, err := privrange.NewMarketplace(privrange.Tariff{Base: 1, C: 1e9})
	if err != nil {
		log.Fatal(err)
	}
	if err := mp.AddDataset("ozone", series.Values, privrange.Options{Nodes: 8, Seed: 2}); err != nil {
		log.Fatal(err)
	}
	mp.EnablePrepaid()

	acc := privrange.Accuracy{Alpha: 0.1, Delta: 0.6}
	quote, err := mp.Quote("ozone", acc)
	if err != nil {
		log.Fatal(err)
	}
	if err := mp.Deposit("alice", quote.Price*2); err != nil {
		log.Fatal(err)
	}
	res, err := mp.Buy("alice", "ozone", 40, 90, acc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("charged the quoted price:", res.Price == quote.Price)
	fmt.Println("sale recorded:", mp.Purchases() == 1)
	fmt.Printf("remaining balance: %.2f x price\n", mp.Balance("alice")/quote.Price)
	// Output:
	// charged the quoted price: true
	// sale recorded: true
	// remaining balance: 1.00 x price
}

// ExampleSystem_Histogram shows the one-ε band histogram release.
func ExampleSystem_Histogram() {
	series, err := dataset.GenerateSeries(dataset.ParticulateMatter, dataset.GenerateConfig{Seed: 3, Records: 8000})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := privrange.NewSystem(series.Values, privrange.Options{Nodes: 8, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	h, err := sys.Histogram([]float64{0, 50, 100, 300}, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bands:", len(h.Counts))
	total := 0.0
	for _, c := range h.Counts {
		total += c
	}
	fmt.Println("normalized to n:", int(total+0.5) == sys.N())
	// Output:
	// bands: 3
	// normalized to n: true
}
