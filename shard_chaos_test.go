package privrange

import (
	"errors"
	"math"
	"testing"

	"privrange/internal/iot"
)

// TestShardChaosDegradedShard degrades one shard — a scheduled crash
// window on a single node, so exactly one shard's collection loop sees
// failures — and checks the sharded deployment under BestEffort stays
// bit-identical to the single-broker engine through the outage: same
// released values, same composed coverage (< 1 while the node is dark,
// back to 1 after recovery), monotonic version provenance. Crash
// windows are deterministic (they consume no RNG), so the fault script
// replays identically for any shard count; per-node loss rates would
// not (each shard draws from its own loss stream) and are deliberately
// not used here.
func TestShardChaosDegradedShard(t *testing.T) {
	values := shardTestValues(4000)
	const crashed = 13
	opts := func(shards int) Options {
		return Options{
			Nodes:      32,
			Seed:       23,
			Shards:     shards,
			BestEffort: true,
			Faults: map[int]iot.FaultProfile{
				// Round 1 is clean (the first collection establishes the
				// rate); the node is dark for rounds 2-3 and back for 4.
				crashed: {CrashWindows: []iot.CrashWindow{{From: 2, Until: 4}}},
			},
		}
	}
	single, err := NewSystem(values, opts(0))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSystem(values, opts(3))
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy{Alpha: 0.06, Delta: 0.8}

	step := func(name string, wantDegraded bool) {
		t.Helper()
		a, err := single.Count(50, 400, acc)
		if err != nil {
			t.Fatalf("%s single: %v", name, err)
		}
		b, err := sharded.Count(50, 400, acc)
		if err != nil {
			t.Fatalf("%s sharded: %v", name, err)
		}
		if math.Float64bits(a.Value) != math.Float64bits(b.Value) {
			t.Errorf("%s: sharded value %v != single-broker %v", name, b.Value, a.Value)
		}
		if a.Coverage != b.Coverage {
			t.Errorf("%s: sharded coverage %v != single-broker %v", name, b.Coverage, a.Coverage)
		}
		if wantDegraded && b.Coverage >= 1 {
			t.Errorf("%s: coverage %v, want < 1 while the shard is degraded", name, b.Coverage)
		}
		if !wantDegraded && b.Coverage != 1 {
			t.Errorf("%s: coverage %v, want 1", name, b.Coverage)
		}
	}
	ingest := func(name string, wantPartial bool) {
		t.Helper()
		for _, sys := range []*System{single, sharded} {
			err := sys.Ingest(shardTestValues(64))
			if wantPartial {
				if !errors.Is(err, iot.ErrPartialRound) {
					t.Fatalf("%s: want ErrPartialRound, got %v", name, err)
				}
			} else if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}

	step("round 1 clean", false)
	v1 := countVersions(t, single, sharded, acc)

	ingest("round 2 in window", true)
	step("degraded", true)
	v2 := countVersions(t, single, sharded, acc)
	if v2 < v1 {
		t.Errorf("composed version moved backwards: %d -> %d", v1, v2)
	}

	ingest("round 3 in window", true)
	step("still degraded", true)

	ingest("round 4 recovered", false)
	step("recovered", false)
	v3 := countVersions(t, single, sharded, acc)
	if v3 <= v2 {
		t.Errorf("recovery did not advance the composed version: %d -> %d", v2, v3)
	}
}

// countVersions releases one answer on BOTH systems — the noise streams
// must stay in lockstep for the bit-identity assertions — and returns
// the sharded answer's composed CollectionVersion provenance.
func countVersions(t *testing.T, single, sharded *System, acc Accuracy) uint64 {
	t.Helper()
	if _, err := single.Count(0, 499, acc); err != nil {
		t.Fatal(err)
	}
	ans, err := sharded.Count(0, 499, acc)
	if err != nil {
		t.Fatal(err)
	}
	return ans.CollectionVersion
}
