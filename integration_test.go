package privrange_test

// The all-features integration scenario: every production feature of the
// trading stack exercised together against a real TCP endpoint —
// prepaid accounts, answer caching, per-customer privacy caps, the
// averaging adversary, ledger audit, and state save/restore across a
// broker restart.

import (
	"bytes"
	"math"
	"testing"

	"privrange"
	"privrange/internal/dataset"
	"privrange/internal/estimator"
	"privrange/internal/market"
	"privrange/internal/pricing"
)

func TestFullScenarioIntegration(t *testing.T) {
	t.Parallel()
	table, err := dataset.Generate(dataset.GenerateConfig{Seed: 7, Records: 8000})
	if err != nil {
		t.Fatal(err)
	}

	build := func() *privrange.Marketplace {
		mp, err := privrange.NewMarketplace(privrange.Tariff{Base: 2, C: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []dataset.Pollutant{dataset.Ozone, dataset.ParticulateMatter} {
			series, err := table.Series(p)
			if err != nil {
				t.Fatal(err)
			}
			opts := privrange.Options{Nodes: 8, Seed: int64(p), CacheAnswers: true}
			if err := mp.AddDataset(p.String(), series.Values, opts); err != nil {
				t.Fatal(err)
			}
		}
		mp.EnablePrepaid()
		return mp
	}
	mp := build()
	srv, err := mp.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := market.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Catalog lists both datasets.
	cat, err := client.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 2 {
		t.Fatalf("catalog = %+v", cat)
	}

	// Fund alice; buy the same answer twice — the cache returns the same
	// value and the ledger still records two sales (she paid twice; the
	// broker released once).
	price, _, err := client.Quote("ozone", 0.1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Deposit("alice", price*10); err != nil {
		t.Fatal(err)
	}
	req := market.Request{Dataset: "ozone", Customer: "alice", L: 40, U: 90, Alpha: 0.1, Delta: 0.6}
	first, err := client.Buy(req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Buy(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Value != second.Value {
		t.Error("caching broker should re-serve the identical released answer")
	}
	if mp.Purchases() != 2 {
		t.Errorf("purchases = %d, want 2", mp.Purchases())
	}

	// The adversary attacks the safe tariff over TCP and fails.
	advClient, err := market.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer advClient.Close()
	if _, err := advClient.Deposit("mallory", 1e9); err != nil {
		t.Fatal(err)
	}
	mallory := market.ArbitrageConsumer{
		Name:   "mallory",
		Market: market.RemoteMarket{Client: advClient},
		Menu:   pricing.DefaultMenu(),
	}
	attack, err := mallory.Buy("particulate_matter", 60, 160, estimator.Accuracy{Alpha: 0.05, Delta: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if attack.Arbitrage {
		t.Errorf("audited tariff beaten: saved %v", attack.Savings())
	}

	// Ledger analytics see alice's repeat purchases (cache or not, she
	// bought the same thing twice).
	sus := mp.Audit()
	for _, s := range sus {
		if s.Customer == "mallory" {
			t.Errorf("mallory bought once, should not be flagged: %+v", s)
		}
	}
	if got := mp.PrivacySpent("ozone"); got <= 0 {
		t.Error("ozone privacy ledger empty")
	}

	// Save the books, rebuild the broker (fresh engines), restore, and
	// verify money and history survived the restart.
	var snapshot bytes.Buffer
	if err := mp.SaveState(&snapshot); err != nil {
		t.Fatal(err)
	}
	restored := build()
	if err := restored.RestoreState(bytes.NewReader(snapshot.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Purchases() != mp.Purchases() {
		t.Errorf("restored purchases = %d, want %d", restored.Purchases(), mp.Purchases())
	}
	if math.Abs(restored.Revenue()-mp.Revenue()) > 1e-9 {
		t.Errorf("restored revenue = %v, want %v", restored.Revenue(), mp.Revenue())
	}
	if math.Abs(restored.Balance("alice")-mp.Balance("alice")) > 1e-9 {
		t.Errorf("restored balance = %v, want %v", restored.Balance("alice"), mp.Balance("alice"))
	}
	// And the restored broker keeps trading.
	if _, err := restored.Buy("alice", "ozone", 40, 90, privrange.Accuracy{Alpha: 0.1, Delta: 0.6}); err != nil {
		t.Fatalf("restored broker cannot sell: %v", err)
	}
}

func TestBatchThroughFacade(t *testing.T) {
	t.Parallel()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 9, Records: 8000})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := privrange.NewSystem(series.Values, privrange.Options{Nodes: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	acc := privrange.Accuracy{Alpha: 0.08, Delta: 0.6}
	ranges := []privrange.Range{{L: 0, U: 50}, {L: 50, U: 100}, {L: 100, U: 300}}
	answers, err := sys.CountBatch(ranges, acc)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(ranges) {
		t.Fatalf("answers = %d", len(answers))
	}
	wantSpend := answers[0].EpsilonPrime * float64(len(ranges))
	if got := sys.SpentBudget(); math.Abs(got-wantSpend) > 1e-12 {
		t.Errorf("batch spend = %v, want %v", got, wantSpend)
	}
	for i, ans := range answers {
		truth, err := series.RangeCount(ranges[i].L, ranges[i].U)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ans.Value-float64(truth)) > 3*acc.Alpha*float64(series.Len()) {
			t.Errorf("answer %d: %v wildly off %d", i, ans.Value, truth)
		}
	}
	if _, err := sys.CountBatch(nil, acc); err == nil {
		t.Error("empty batch should fail")
	}
}
