// Command privlint runs the repo's custom static-analysis suite: seven
// analyzers that mechanically enforce the privacy, determinism, locking,
// billing and telemetry-taint invariants DESIGN.md §8 catalogs. It is built only on the
// standard library, so it compiles and runs offline with nothing but
// the Go toolchain.
//
// Usage:
//
//	privlint [-list] [packages]
//
// With no arguments it lints ./... relative to the enclosing module.
// Test files are not linted (go vet covers their basics); the suite
// targets the production pipeline the privacy contract rides on.
// It exits non-zero when any analyzer reports a finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"privrange/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: privlint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	// Sentinel facts must span the whole module even when linting a
	// subset, so a re-definition in one package of a sentinel declared
	// in another is still caught.
	all := pkgs
	if modulePkgs, err := loader.Load("./..."); err == nil {
		all = modulePkgs
	}
	sentinels := lint.CollectSentinels(all)
	diags, err := lint.Run(lint.All(), pkgs, loader.Fset, sentinels)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		fmt.Printf("%s: %s [%s]\n", pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "privlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "privlint:", err)
	os.Exit(2)
}
