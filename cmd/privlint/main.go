// Command privlint runs the repo's custom static-analysis suite: twelve
// analyzers that mechanically enforce the privacy, determinism, locking,
// lock-ordering, goroutine-discipline, atomicity, billing and
// telemetry-taint invariants DESIGN.md §8 catalogs. It is built only on
// the standard library, so it compiles and runs offline with nothing but
// the Go toolchain.
//
// Usage:
//
//	privlint [-list] [-json] [packages]
//
// With no arguments it lints ./... relative to the enclosing module.
// Test files are not linted (go vet covers their basics); the suite
// targets the production pipeline the privacy contract rides on.
// It exits non-zero when any analyzer reports a finding.
//
// -json emits the findings as a deterministic machine-readable report
// (sorted, one object per finding plus a summary header) so lint output
// can be diffed across commits in results/. The exit status is the same
// as the human-readable mode.
//
// Findings can be suppressed at the offending line with
// `//lint:allow <analyzer> <reason>`; the reason is mandatory, and
// directives that suppress nothing are findings themselves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"privrange/internal/lint"
)

// jsonReport is the -json output schema. Versioned so results/ diffs
// survive schema growth.
type jsonReport struct {
	Version   int           `json:"version"`
	Analyzers []string      `json:"analyzers"`
	Packages  int           `json:"packages"`
	Findings  []jsonFinding `json:"findings"`
}

type jsonFinding struct {
	Position string `json:"position"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a machine-readable JSON report")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: privlint [-list] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	// Module-wide facts must span the whole module even when linting a
	// subset: sentinel re-definitions, lock-order edges, determinism
	// hazards and atomic fields all cross package boundaries.
	all := pkgs
	if modulePkgs, err := loader.Load("./..."); err == nil {
		all = modulePkgs
	}
	sentinels := lint.CollectSentinels(all)
	facts, err := lint.ComputeFacts(all, loader.Fset)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.Run(lint.All(), pkgs, loader.Fset, lint.RunConfig{Sentinels: sentinels, Facts: facts})
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		report := jsonReport{
			Version:  1,
			Packages: len(pkgs),
		}
		for _, a := range lint.All() {
			report.Analyzers = append(report.Analyzers, a.Name)
		}
		report.Findings = make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				Position: loader.Fset.Position(d.Pos).String(),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			fmt.Printf("%s: %s [%s]\n", pos, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "privlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "privlint:", err)
	os.Exit(2)
}
