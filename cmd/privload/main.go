// Command privload is an open-loop load generator for the trading
// protocol: it fires quote/buy/deposit/balance requests at a fixed
// arrival rate (arrivals are scheduled by the clock, never by
// completions — the generator models independent customers, not a
// closed feedback loop), measures client-side latency percentiles
// (p50/p90/p99/p999) and achieved throughput, and scrapes the server's
// telemetry snapshot for the broker-side view (purchases, shed count,
// coalesced batches).
//
// By default it self-hosts a marketplace in-process and runs two
// phases on identical workloads — the serial baseline (legacy
// one-at-a-time client, no coalescing) and the pipelined path
// (pipelined client, buy coalescing) — so the throughput win of the
// serving path is measured, not asserted. Point it at an external
// daemon with -addr to load-test a running privranged instead.
//
// Usage:
//
//	privload [-rate 2000] [-duration 3s] [-conns 8]
//	         [-mix buy=60,quote=30,deposit=5,balance=5]
//	         [-o results/bench-load.json] [-txt results/bench-load.txt]
//	         [-addr host:port] [-pipeline] [-min-success 0.05]
//	         [-slo 0.99:50ms] [-max-burn 1]
//
// Exit status is non-zero when the load run sheds or fails everything
// (the CI smoke gate), when a phase deadlocks, or — with -slo — when
// the declared buy objective is burning its error budget faster than
// -max-burn in any window after the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"privrange"
	"privrange/internal/dataset"
	"privrange/internal/market"
	"privrange/internal/stats"
)

func main() {
	var (
		addr     = flag.String("addr", "", "target an external daemon (default: self-host in-process)")
		rate     = flag.Float64("rate", 2000, "target arrival rate, requests/second")
		duration = flag.Duration("duration", 3*time.Second, "length of each load phase")
		conns    = flag.Int("conns", 8, "client connections")
		mix      = flag.String("mix", "buy=60,quote=30,deposit=5,balance=5", "operation mix as op=weight pairs")
		pipeline = flag.Bool("pipeline", true, "use the pipelined client (external-target mode)")
		outst    = flag.Int("outstanding", 512, "client-side cap on in-flight requests")
		alpha    = flag.Float64("alpha", 0.1, "buy accuracy α")
		delta    = flag.Float64("delta", 0.8, "buy accuracy δ")
		records  = flag.Int("records", 5000, "self-hosted dataset size")
		nodes    = flag.Int("nodes", 16, "self-hosted IoT nodes")
		seed     = flag.Int64("seed", 7, "workload and dataset seed")
		minOK    = flag.Float64("min-success", 0.05, "fail unless this fraction of sent requests succeeded (smoke gate)")
		jsonOut  = flag.String("o", "", "write the machine-readable report here (e.g. results/bench-load.json)")
		txtOut   = flag.String("txt", "", "write the human-readable report here too")
		sloSpec  = flag.String("slo", "", "declare a buy SLO as target:threshold (e.g. 0.99:50ms) and fail on error-budget burn (self-hosted only)")
		maxBurn  = flag.Float64("max-burn", 1, "with -slo, fail when any window's burn rate exceeds this")
	)
	flag.Parse()
	cfg := config{
		addr: *addr, rate: *rate, duration: *duration, conns: *conns,
		pipeline: *pipeline, outstanding: *outst,
		alpha: *alpha, delta: *delta, records: *records, nodes: *nodes,
		seed: *seed, maxBurn: *maxBurn,
	}
	var err error
	cfg.mix, err = parseMix(*mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "privload: %v\n", err)
		os.Exit(2)
	}
	if *sloSpec != "" {
		if *addr != "" {
			fmt.Fprintln(os.Stderr, "privload: -slo needs the self-hosted marketplace (declare the SLO on the external daemon instead)")
			os.Exit(2)
		}
		slo, err := parseSLO(*sloSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privload: -slo %q: %v\n", *sloSpec, err)
			os.Exit(2)
		}
		cfg.slo, cfg.sloSet = slo, true
	}
	if err := run(cfg, *minOK, *jsonOut, *txtOut); err != nil {
		fmt.Fprintf(os.Stderr, "privload: %v\n", err)
		os.Exit(1)
	}
}

// parseSLO parses "target:threshold" (e.g. "0.99:50ms"); a bare target
// declares a pure availability objective.
func parseSLO(spec string) (privrange.SLO, error) {
	targetStr, thresholdStr, hasThreshold := strings.Cut(spec, ":")
	target, err := strconv.ParseFloat(targetStr, 64)
	if err != nil || target <= 0 || target >= 1 {
		return privrange.SLO{}, fmt.Errorf("target must be a fraction in (0, 1)")
	}
	slo := privrange.SLO{Name: "buy", Target: target}
	if hasThreshold {
		d, err := time.ParseDuration(thresholdStr)
		if err != nil || d <= 0 {
			return privrange.SLO{}, fmt.Errorf("threshold must be a positive duration, e.g. 50ms")
		}
		slo.Threshold = d
	}
	return slo, nil
}

type config struct {
	addr        string
	rate        float64
	duration    time.Duration
	conns       int
	pipeline    bool
	outstanding int
	alpha       float64
	delta       float64
	records     int
	nodes       int
	seed        int64
	mix         []mixEntry
	slo         privrange.SLO
	sloSet      bool
	maxBurn     float64
}

type mixEntry struct {
	op     string
	weight int
}

func parseMix(s string) ([]mixEntry, error) {
	var out []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want op=weight", part)
		}
		switch op {
		case "buy", "quote", "deposit", "balance", "catalog":
		default:
			return nil, fmt.Errorf("mix op %q not in {buy, quote, deposit, balance, catalog}", op)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("mix weight %q: want non-negative integer", w)
		}
		if n > 0 {
			out = append(out, mixEntry{op: op, weight: n})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return out, nil
}

// latencyStats is the client-observed latency distribution, exact
// percentiles over every completed request.
type latencyStats struct {
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// phaseReport is one load phase's outcome.
type phaseReport struct {
	Name        string            `json:"name"`
	Pipelined   bool              `json:"pipelined"`
	Coalesced   bool              `json:"coalesced"`
	TargetQPS   float64           `json:"target_qps"`
	AchievedQPS float64           `json:"achieved_qps"`
	DurationSec float64           `json:"duration_sec"`
	Sent        int64             `json:"sent"`
	OK          int64             `json:"ok"`
	Shed        int64             `json:"shed"`
	Errors      int64             `json:"errors"`
	Dropped     int64             `json:"client_dropped"`
	Latency     latencyStats      `json:"latency"`
	Server      map[string]uint64 `json:"server,omitempty"`
	// Gauges holds the broker-side instantaneous state worth archiving:
	// SLO burn rates per window plus the engine-queue and
	// pipeline-occupancy gauges.
	Gauges map[string]float64 `json:"gauges,omitempty"`
}

// report is the bench-load.json schema later PRs diff against.
type report struct {
	Tool     string        `json:"tool"`
	RateQPS  float64       `json:"rate_qps"`
	Duration string        `json:"duration"`
	Conns    int           `json:"conns"`
	Mix      string        `json:"mix"`
	Phases   []phaseReport `json:"phases"`
}

func run(cfg config, minOK float64, jsonOut, txtOut string) error {
	rep := report{
		Tool:     "privload",
		RateQPS:  cfg.rate,
		Duration: cfg.duration.String(),
		Conns:    cfg.conns,
		Mix:      mixString(cfg.mix),
	}
	if cfg.addr != "" {
		// External target: one phase against the given daemon.
		pr, err := runPhase(cfg, phaseSpec{
			name: "external", addr: cfg.addr, pipelined: cfg.pipeline,
		})
		if err != nil {
			return err
		}
		rep.Phases = append(rep.Phases, pr)
	} else {
		// Self-hosted comparison: serial baseline, then the pipelined +
		// coalesced serving path, each against a fresh marketplace so
		// budgets and caches never bleed between phases.
		for _, spec := range []phaseSpec{
			{name: "baseline-serial", pipelined: false, coalesced: false},
			{name: "pipelined-coalesced", pipelined: true, coalesced: true},
		} {
			host, err := selfHost(cfg, spec.coalesced)
			if err != nil {
				return err
			}
			spec.addr = host.addr
			spec.opsAddr = host.opsAddr
			pr, err := runPhase(cfg, spec)
			host.close()
			if err != nil {
				return err
			}
			rep.Phases = append(rep.Phases, pr)
		}
	}

	text := formatReport(rep)
	fmt.Print(text)
	if txtOut != "" {
		if err := writeFile(txtOut, []byte(text)); err != nil {
			return err
		}
	}
	if jsonOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFile(jsonOut, append(blob, '\n')); err != nil {
			return err
		}
	}

	// Smoke gate: a serving path that sheds or fails everything is a
	// regression even if nothing crashed.
	for _, pr := range rep.Phases {
		if pr.Sent == 0 {
			return fmt.Errorf("phase %s sent nothing", pr.Name)
		}
		if frac := float64(pr.OK) / float64(pr.Sent); frac < minOK {
			return fmt.Errorf("phase %s: only %.1f%% of %d requests succeeded (ok %d, shed %d, errors %d) — below the %.1f%% smoke gate",
				pr.Name, 100*frac, pr.Sent, pr.OK, pr.Shed, pr.Errors, 100*minOK)
		}
	}

	// SLO gate: with -slo, any window burning its error budget faster
	// than -max-burn fails the run — the CI hook for latency
	// regressions that still pass the smoke gate.
	if cfg.sloSet {
		for _, pr := range rep.Phases {
			for k, v := range pr.Gauges {
				if strings.HasPrefix(k, "slo_burn_rate") && v > cfg.maxBurn {
					return fmt.Errorf("phase %s: %s = %.2f exceeds the %.2f burn gate (target %g within %v)",
						pr.Name, k, v, cfg.maxBurn, cfg.slo.Target, cfg.slo.Threshold)
				}
			}
		}
	}
	return nil
}

func mixString(mix []mixEntry) string {
	parts := make([]string, len(mix))
	for i, m := range mix {
		parts[i] = fmt.Sprintf("%s=%d", m.op, m.weight)
	}
	return strings.Join(parts, ",")
}

func writeFile(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// selfHosted is an in-process marketplace plus its trading and ops
// endpoints.
type selfHosted struct {
	addr    string
	opsAddr string
	close   func()
}

var loadCustomers = []string{"ada", "bob", "cyd", "dee", "eli", "fay"}

func selfHost(cfg config, coalesce bool) (*selfHosted, error) {
	mp, err := privrange.NewMarketplace(privrange.Tariff{C: 100})
	if err != nil {
		return nil, err
	}
	mp.EnablePrepaid()
	mp.EnableTelemetry()
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: cfg.seed, Records: cfg.records})
	if err != nil {
		return nil, err
	}
	if err := mp.AddDataset("air", series.Values, privrange.Options{Nodes: cfg.nodes, Seed: cfg.seed}); err != nil {
		return nil, err
	}
	for _, cust := range loadCustomers {
		if err := mp.Deposit(cust, 1e12); err != nil {
			return nil, err
		}
	}
	if cfg.sloSet {
		mp.DeclareBuySLO(cfg.slo)
	}
	if coalesce {
		mp.EnableCoalescing(privrange.CoalesceConfig{})
	}
	srv, err := mp.Serve("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ops, err := mp.ServeOps("127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &selfHosted{
		addr:    srv.Addr(),
		opsAddr: ops.Addr(),
		close: func() {
			srv.Close()
			ops.Close()
			mp.DisableCoalescing()
		},
	}, nil
}

type phaseSpec struct {
	name      string
	addr      string
	opsAddr   string
	pipelined bool
	coalesced bool
}

// runPhase drives one open-loop load phase and reports it.
func runPhase(cfg config, spec phaseSpec) (phaseReport, error) {
	pr := phaseReport{
		Name: spec.name, Pipelined: spec.pipelined, Coalesced: spec.coalesced,
		TargetQPS: cfg.rate,
	}
	clients := make([]*market.Client, cfg.conns)
	dialOpts := []market.DialOption{market.WithRequestTimeout(10 * time.Second)}
	if spec.pipelined {
		dialOpts = append(dialOpts, market.WithPipelining())
	}
	for i := range clients {
		c, err := market.Dial(spec.addr, dialOpts...)
		if err != nil {
			return pr, fmt.Errorf("dial %s: %w", spec.addr, err)
		}
		clients[i] = c
		defer c.Close()
	}

	var (
		mu             sync.Mutex
		latencies      []time.Duration
		ok, shed, errs int64
	)
	sem := make(chan struct{}, cfg.outstanding)
	var wg sync.WaitGroup
	rng := stats.NewRNG(cfg.seed)
	dataset := "air"
	if cfg.addr != "" {
		dataset = externalDataset(clients[0])
	}
	weightSum := 0
	for _, m := range cfg.mix {
		weightSum += m.weight
	}

	start := time.Now()
	end := start.Add(cfg.duration)
	var sent, dropped int64
	for i := int64(0); ; i++ {
		due := start.Add(time.Duration(float64(i) / cfg.rate * float64(time.Second)))
		if due.After(end) {
			break
		}
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		req := buildRequest(rng, cfg, dataset, weightSum)
		select {
		case sem <- struct{}{}:
		default:
			// Open loop: the arrival happened whether or not the client
			// had capacity. Refusing to queue it unboundedly mirrors a
			// real customer giving up.
			dropped++
			continue
		}
		sent++
		client := clients[int(i)%len(clients)]
		wg.Add(1)
		go func(req market.Request) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			resp, err := client.Do(req)
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, lat)
			switch {
			case err != nil:
				errs++
			case resp.Retryable:
				shed++
			case resp.Error != "":
				errs++
			default:
				ok++
			}
		}(req)
	}

	// Deadlock gate: every request carries a 10s client timeout, so a
	// drain that outlives duration + timeout + slack means the serving
	// path wedged — fail loudly instead of hanging CI.
	done := make(chan struct{})
	//lint:allow goroutinescope exits when the last worker finishes; on the timeout path below main exits the process
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(cfg.duration + 30*time.Second):
		return pr, fmt.Errorf("phase %s: requests still outstanding 30s after the phase ended (deadlock?)", spec.name)
	}
	elapsed := time.Since(start)

	pr.Sent, pr.OK, pr.Shed, pr.Errors, pr.Dropped = sent, ok, shed, errs, dropped
	pr.DurationSec = elapsed.Seconds()
	pr.AchievedQPS = float64(ok+shed+errs) / elapsed.Seconds()
	pr.Latency = percentiles(latencies)
	if spec.opsAddr != "" {
		pr.Server = scrapeServer(spec.opsAddr)
		pr.Gauges = scrapeGauges(spec.opsAddr)
	}
	return pr, nil
}

// externalDataset picks the first catalog entry of an external target.
func externalDataset(c *market.Client) string {
	if infos, err := c.Catalog(); err == nil && len(infos) > 0 {
		return infos[0].Name
	}
	return "air"
}

func buildRequest(rng *stats.RNG, cfg config, ds string, weightSum int) market.Request {
	pick := rng.Intn(weightSum)
	op := cfg.mix[0].op
	for _, m := range cfg.mix {
		if pick < m.weight {
			op = m.op
			break
		}
		pick -= m.weight
	}
	cust := loadCustomers[rng.Intn(len(loadCustomers))]
	switch op {
	case "buy":
		l := float64(rng.Intn(400))
		return market.Request{
			Op: "buy", Dataset: ds, Customer: cust,
			L: l, U: l + 50 + float64(rng.Intn(200)),
			Alpha: cfg.alpha, Delta: cfg.delta,
		}
	case "quote":
		return market.Request{Op: "quote", Dataset: ds, Alpha: cfg.alpha, Delta: cfg.delta}
	case "deposit":
		return market.Request{Op: "deposit", Customer: cust, Amount: 10}
	case "balance":
		return market.Request{Op: "balance", Customer: cust}
	default:
		return market.Request{Op: "catalog"}
	}
}

func percentiles(lat []time.Duration) latencyStats {
	if len(lat) == 0 {
		return latencyStats{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(len(lat)-1))
		return float64(lat[idx]) / float64(time.Millisecond)
	}
	return latencyStats{
		P50Ms:  at(0.50),
		P90Ms:  at(0.90),
		P99Ms:  at(0.99),
		P999Ms: at(0.999),
		MaxMs:  float64(lat[len(lat)-1]) / float64(time.Millisecond),
	}
}

// scrapeServer pulls the broker-side counters worth archiving from the
// ops snapshot (PR 5 telemetry): requests by op, purchases, shed and
// coalescing activity.
func scrapeServer(opsAddr string) map[string]uint64 {
	resp, err := http.Get("http://" + opsAddr + "/snapshot")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var snap struct {
		Counters []struct {
			Name   string `json:"name"`
			Labels string `json:"labels"`
			Value  uint64 `json:"value"`
		} `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	keep := map[string]bool{
		"privrange_market_requests_total":         true,
		"privrange_market_purchases_total":        true,
		"privrange_market_rejections_total":       true,
		"privrange_market_shed_total":             true,
		"privrange_market_coalesce_batches_total": true,
		"privrange_market_coalesce_folded_total":  true,
		"privrange_market_oversized_frames_total": true,
		"privrange_market_decode_failures_total":  true,
	}
	out := make(map[string]uint64)
	for _, c := range snap.Counters {
		if !keep[c.Name] {
			continue
		}
		key := strings.TrimPrefix(c.Name, "privrange_market_") + c.Labels
		out[key] += c.Value
	}
	return out
}

// scrapeGauges pulls the instantaneous broker-side gauges worth
// archiving: SLO burn rates (PR 10) plus the engine-queue and
// pipeline-occupancy saturation gauges.
func scrapeGauges(opsAddr string) map[string]float64 {
	resp, err := http.Get("http://" + opsAddr + "/snapshot")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var snap struct {
		Gauges []struct {
			Name   string  `json:"name"`
			Labels string  `json:"labels"`
			Value  float64 `json:"value"`
		} `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	keep := map[string]bool{
		"privrange_slo_burn_rate":             true,
		"privrange_market_engine_queue_depth": true,
		"privrange_market_pipeline_occupancy": true,
	}
	out := make(map[string]float64)
	for _, g := range snap.Gauges {
		if !keep[g.Name] {
			continue
		}
		out[strings.TrimPrefix(g.Name, "privrange_")+g.Labels] = g.Value
	}
	return out
}

func formatReport(rep report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "privload: %s for %s on %d conns, mix %s\n",
		qpsString(rep.RateQPS), rep.Duration, rep.Conns, rep.Mix)
	for _, pr := range rep.Phases {
		fmt.Fprintf(&b, "\nphase %-20s pipelined=%v coalesced=%v\n", pr.Name, pr.Pipelined, pr.Coalesced)
		fmt.Fprintf(&b, "  sent %d  ok %d  shed %d  errors %d  client-dropped %d\n",
			pr.Sent, pr.OK, pr.Shed, pr.Errors, pr.Dropped)
		fmt.Fprintf(&b, "  achieved %s (target %s)\n", qpsString(pr.AchievedQPS), qpsString(pr.TargetQPS))
		fmt.Fprintf(&b, "  latency ms  p50 %.3f  p90 %.3f  p99 %.3f  p999 %.3f  max %.3f\n",
			pr.Latency.P50Ms, pr.Latency.P90Ms, pr.Latency.P99Ms, pr.Latency.P999Ms, pr.Latency.MaxMs)
		if len(pr.Server) > 0 {
			keys := make([]string, 0, len(pr.Server))
			for k := range pr.Server {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(&b, "  server:")
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%d", k, pr.Server[k])
			}
			fmt.Fprintln(&b)
		}
		if len(pr.Gauges) > 0 {
			keys := make([]string, 0, len(pr.Gauges))
			for k := range pr.Gauges {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(&b, "  gauges:")
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%g", k, pr.Gauges[k])
			}
			fmt.Fprintln(&b)
		}
	}
	if len(rep.Phases) == 2 {
		base, pipe := rep.Phases[0], rep.Phases[1]
		if base.AchievedQPS > 0 {
			fmt.Fprintf(&b, "\nspeedup: %.2fx achieved QPS (%s -> %s)\n",
				pipe.AchievedQPS/base.AchievedQPS, qpsString(base.AchievedQPS), qpsString(pipe.AchievedQPS))
		}
	}
	return b.String()
}

func qpsString(q float64) string {
	return strconv.FormatFloat(q, 'f', 1, 64) + " qps"
}
