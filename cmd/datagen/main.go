// Command datagen emits the synthetic CityPulse-equivalent pollution
// dataset as CSV (timestamp plus the five air-quality indexes).
//
// Usage:
//
//	datagen [-records 17568] [-seed 1] [-o pollution.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"privrange/internal/dataset"
)

func main() {
	var (
		records = flag.Int("records", dataset.CityPulseRecords, "number of records")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	table, err := dataset.Generate(dataset.GenerateConfig{Records: *records, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "datagen: close: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	if err := table.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}
