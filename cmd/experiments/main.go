// Command experiments regenerates the paper's evaluation: one runner per
// figure (fig2…fig6) plus the repository's ablations.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig2 [-seed 1] [-trials 5] [-k 10] [-records 17568] [-csv]
//	experiments -all [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"privrange/internal/bench"
	"privrange/internal/dataset"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		exp     = flag.String("exp", "", "experiment id to run (e.g. fig2)")
		all     = flag.Bool("all", false, "run every experiment")
		seed    = flag.Int64("seed", 1, "experiment seed")
		trials  = flag.Int("trials", 5, "independent sample draws per measured point")
		k       = flag.Int("k", 10, "simulated IoT node count")
		records = flag.Int("records", dataset.CityPulseRecords, "dataset size")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		outDir  = flag.String("o", "", "also write each experiment's CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, name := range bench.Experiments() {
			fmt.Println(name)
		}
		return
	}

	cfg := bench.Config{Seed: *seed, Trials: *trials, K: *k, Records: *records}
	var names []string
	switch {
	case *all:
		names = bench.Experiments()
	case *exp != "":
		names = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "experiments: need -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	for i, name := range names {
		res, err := bench.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		if *csvOut {
			fmt.Printf("# %s\n%s", res.Name, res.CSV())
		} else {
			fmt.Print(res.Table())
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, res.Name+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", path, err)
				os.Exit(1)
			}
		}
	}
}
