// Command privranged runs a data-broker daemon: it loads (or generates)
// the pollution dataset, spreads it over a simulated IoT deployment, and
// serves the trading protocol over TCP. Each of the five air-quality
// indexes is a purchasable dataset.
//
// Usage:
//
//	privranged [-addr 127.0.0.1:7070] [-data pollution.csv] [-nodes 16]
//	           [-seed 1] [-base-fee 1] [-tariff-c 1e9] [-budget 0]
//	           [-ops 127.0.0.1:7071] [-wal /var/lib/privrange]
//	           [-trace-sample 64] [-slo 0.99:20ms]
//
// The protocol is newline-delimited JSON; see cmd/privquery for a client.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"privrange"
	"privrange/internal/dataset"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		data     = flag.String("data", "", "CityPulse-style CSV to serve (default: generate synthetic)")
		nodes    = flag.Int("nodes", 16, "simulated IoT nodes per dataset")
		seed     = flag.Int64("seed", 1, "seed for generation, sampling and noise")
		baseFee  = flag.Float64("base-fee", 1, "flat per-query fee")
		tariffC  = flag.Float64("tariff-c", 1e9, "1/V tariff coefficient")
		budget   = flag.Float64("budget", 0, "total privacy budget cap per dataset (0 = uncapped)")
		prepaid  = flag.Bool("prepaid", false, "require prepaid customer accounts (privquery deposit)")
		state    = flag.String("state", "", "trading-state snapshot file (loaded on boot, saved on shutdown)")
		wal      = flag.String("wal", "", "durability directory: journal every trade before acking, recover on boot (excludes -state)")
		custCap  = flag.Float64("customer-cap", 0, "per-customer privacy cap per dataset (0 = uncapped)")
		ops      = flag.String("ops", "", "operational HTTP endpoint address (metrics, snapshot, pprof); empty disables")
		coalesce = flag.Bool("coalesce", false, "fold concurrent buys into batch sales (adds up to -coalesce-window latency)")
		coWindow = flag.Duration("coalesce-window", time.Millisecond, "longest a buy waits for batch companions")
		inflight = flag.Int("max-inflight", 1024, "admission cap on concurrent requests (-1 disables shedding)")
		depth    = flag.Int("pipeline-depth", 64, "pipelined requests in flight per connection")
		traceN   = flag.Int("trace-sample", 0, "trace 1 in N buys end to end, exported at /traces (0 disables; needs -ops)")
		sloSpec  = flag.String("slo", "", "buy-latency SLO as target:threshold, e.g. 0.99:20ms (burn gauges need -ops)")
	)
	flag.Parse()
	serveCfg := privrange.ServeConfig{MaxInFlight: *inflight, PipelineDepth: *depth}
	if err := run(*addr, *data, *nodes, *seed, *baseFee, *tariffC, *budget, *prepaid, *state, *wal, *custCap, *ops, *coalesce, *coWindow, *traceN, *sloSpec, serveCfg); err != nil {
		fmt.Fprintf(os.Stderr, "privranged: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, dataPath string, nodes int, seed int64, baseFee, tariffC, budget float64, prepaid bool, statePath, walDir string, custCap float64, opsAddr string, coalesce bool, coWindow time.Duration, traceN int, sloSpec string, serveCfg privrange.ServeConfig) error {
	if walDir != "" && statePath != "" {
		return fmt.Errorf("-wal and -state are exclusive: the WAL directory carries its own snapshot")
	}
	table, err := loadTable(dataPath, seed)
	if err != nil {
		return err
	}
	mp, err := privrange.NewMarketplace(privrange.Tariff{Base: baseFee, C: tariffC})
	if err != nil {
		return err
	}
	if prepaid {
		mp.EnablePrepaid()
	}
	if opsAddr != "" {
		// Telemetry must be on before datasets register so every layer
		// is instrumented from the first collection round.
		mp.EnableTelemetry()
	}
	if traceN > 0 {
		mp.EnableTracing(traceN)
		fmt.Printf("privranged: tracing 1 in %d buys (GET /traces on the ops endpoint)\n", traceN)
	}
	if sloSpec != "" {
		slo, err := parseSLO(sloSpec)
		if err != nil {
			return fmt.Errorf("-slo %q: %w", sloSpec, err)
		}
		mp.DeclareBuySLO(slo)
		fmt.Printf("privranged: buy SLO target %g within %v (burn gauges on the ops endpoint)\n", slo.Target, slo.Threshold)
	}
	if custCap > 0 {
		if err := mp.SetCustomerPrivacyCap(custCap); err != nil {
			return err
		}
	}
	if walDir != "" {
		// After EnablePrepaid (recovered balances need wallets) and
		// before AddDataset (each dataset's spent ε restores as it
		// registers).
		if err := mp.EnableDurability(walDir); err != nil {
			return fmt.Errorf("enable durability in %s: %w", walDir, err)
		}
		fmt.Printf("privranged: durable accounting in %s (%d receipts recovered)\n", walDir, mp.Purchases())
	}
	if statePath != "" {
		if f, err := os.Open(statePath); err == nil {
			restoreErr := mp.RestoreState(f)
			f.Close()
			if restoreErr != nil {
				return fmt.Errorf("restore %s: %w", statePath, restoreErr)
			}
			fmt.Printf("privranged: restored %d receipts from %s\n", mp.Purchases(), statePath)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	for _, p := range dataset.Pollutants() {
		series, err := table.Series(p)
		if err != nil {
			return err
		}
		opts := privrange.Options{Nodes: nodes, Seed: seed + int64(p), TotalBudget: budget}
		if err := mp.AddDataset(p.String(), series.Values, opts); err != nil {
			return err
		}
	}
	if coalesce {
		mp.EnableCoalescing(privrange.CoalesceConfig{Window: coWindow})
		defer mp.DisableCoalescing()
		fmt.Printf("privranged: coalescing concurrent buys (window %v)\n", coWindow)
	}
	srv, err := mp.ServeWith(addr, serveCfg)
	if err != nil {
		return err
	}
	fmt.Printf("privranged: serving %d datasets of %d records on %s\n",
		len(dataset.Pollutants()), table.Len(), srv.Addr())
	if opsAddr != "" {
		opsSrv, err := mp.ServeOps(opsAddr)
		if err != nil {
			return err
		}
		defer opsSrv.Close()
		fmt.Printf("privranged: ops endpoint (metrics, snapshot, pprof) on http://%s\n", opsSrv.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("privranged: shutting down")
	if err := srv.Close(); err != nil {
		return err
	}
	if walDir != "" {
		if err := mp.CloseDurability(); err != nil {
			return err
		}
		fmt.Printf("privranged: compacted %d receipts into %s\n", mp.Purchases(), walDir)
	}
	if statePath != "" {
		f, err := os.Create(statePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := mp.SaveState(f); err != nil {
			return err
		}
		fmt.Printf("privranged: saved %d receipts to %s\n", mp.Purchases(), statePath)
	}
	return nil
}

// parseSLO parses "target:threshold" (e.g. "0.99:20ms"). A bare target
// with no colon declares a pure availability objective.
func parseSLO(spec string) (privrange.SLO, error) {
	targetStr, thresholdStr, hasThreshold := strings.Cut(spec, ":")
	target, err := strconv.ParseFloat(targetStr, 64)
	if err != nil || target <= 0 || target >= 1 {
		return privrange.SLO{}, fmt.Errorf("target must be a fraction in (0, 1)")
	}
	slo := privrange.SLO{Name: "buy", Target: target}
	if hasThreshold {
		d, err := time.ParseDuration(thresholdStr)
		if err != nil || d <= 0 {
			return privrange.SLO{}, fmt.Errorf("threshold must be a positive duration, e.g. 20ms")
		}
		slo.Threshold = d
	}
	return slo, nil
}

func loadTable(path string, seed int64) (*dataset.Table, error) {
	if path == "" {
		return dataset.Generate(dataset.GenerateConfig{Seed: seed})
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}
