// Command benchjson converts `go test -bench -benchmem` text output
// into a machine-readable JSON summary so CI and the results/ archive
// can diff benchmark runs without re-parsing the text format. Each
// benchmark line becomes one record with the op name (suffix -P CPU
// count stripped), iterations, ns/op and — when -benchmem was on —
// B/op and allocs/op. Repeated runs of the same benchmark (-count>1)
// are kept as separate records in input order so variance stays
// visible.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o results/bench.json
//	benchjson -o out.json bench-output.txt
//
// With file arguments it reads those instead of stdin. Without -o it
// writes the JSON to stdout. Lines that are not benchmark results
// (headers, PASS/ok trailers) are ignored, so `tee`-captured output
// feeds straight in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is one benchmark measurement.
type Record struct {
	Op          string  `json:"op"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches the testing package's benchmark result format:
//
//	BenchmarkName-8   1203   994487 ns/op   16983 B/op   8 allocs/op
//
// The B/op and allocs/op columns are present only under -benchmem.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: iterations %q: %w", m[2], err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: ns/op %q: %w", m[3], err)
		}
		rec := Record{Op: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			rec.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			rec.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

func run(outPath string, paths []string) error {
	var records []Record
	if len(paths) == 0 {
		recs, err := parse(os.Stdin)
		if err != nil {
			return err
		}
		records = recs
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		recs, err := parse(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		records = append(records, recs...)
	}
	if len(records) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found")
	}
	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(outPath, buf, 0o644)
}

func main() {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchjson [-o out.json] [bench-output.txt ...]\nReads `go test -bench` output (files or stdin) and emits a JSON summary.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(*outPath, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
