package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: privrange/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAnswerBatchParallel          	    1071	   1119923 ns/op	   16983 B/op	       8 allocs/op
BenchmarkAnswerBatchParallelTelemetry 	    1177	   1012047 ns/op	   16980 B/op	       8 allocs/op
BenchmarkEstimateFlatIndex-8          	  137204	      8728 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMemStats                   	     500	   2000000 ns/op
PASS
ok  	privrange/internal/core	14.338s
`

func TestParse(t *testing.T) {
	recs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("parsed %d records, want 4: %+v", len(recs), recs)
	}
	first := recs[0]
	if first.Op != "BenchmarkAnswerBatchParallel" || first.Iterations != 1071 ||
		first.NsPerOp != 1119923 || first.BytesPerOp != 16983 || first.AllocsPerOp != 8 {
		t.Errorf("record 0 = %+v", first)
	}
	// The -8 GOMAXPROCS suffix is stripped so records diff across hosts.
	if recs[2].Op != "BenchmarkEstimateFlatIndex" {
		t.Errorf("suffix not stripped: %q", recs[2].Op)
	}
	if recs[2].AllocsPerOp != 0 || recs[2].BytesPerOp != 0 {
		t.Errorf("zero-alloc record mangled: %+v", recs[2])
	}
	// A line without -benchmem columns still yields ns/op.
	if recs[3].NsPerOp != 2000000 || recs[3].AllocsPerOp != 0 {
		t.Errorf("plain record = %+v", recs[3])
	}
}

func TestParseRejectsNothing(t *testing.T) {
	recs, err := parse(strings.NewReader("PASS\nok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("non-benchmark input should parse to zero records, got %+v", recs)
	}
}
