// Command privsim runs a complete trading scenario end to end: a broker
// serving the five pollutant datasets over TCP, a population of honest
// consumers buying random range counts, and (optionally) an averaging
// adversary. It finishes with the broker's books: revenue, per-customer
// spend, per-dataset privacy released, and the ledger audit.
//
// Usage:
//
//	privsim [-customers 5] [-purchases 4] [-seed 1] [-unsafe] [-prepaid]
//
// -unsafe switches to the deliberately exploitable c/V² tariff so the
// adversary's arbitrage succeeds — the broker's audit still catches the
// pattern.
package main

import (
	"flag"
	"fmt"
	"os"

	"privrange/internal/core"
	"privrange/internal/dataset"
	"privrange/internal/estimator"
	"privrange/internal/iot"
	"privrange/internal/market"
	"privrange/internal/pricing"
	"privrange/internal/stats"
)

func main() {
	var (
		customers = flag.Int("customers", 5, "number of honest consumers")
		purchases = flag.Int("purchases", 4, "purchases per honest consumer")
		seed      = flag.Int64("seed", 1, "scenario seed")
		unsafe    = flag.Bool("unsafe", false, "use an exploitable tariff (demonstrates arbitrage)")
		prepaid   = flag.Bool("prepaid", false, "require prepaid accounts")
	)
	flag.Parse()
	if err := run(*customers, *purchases, *seed, *unsafe, *prepaid); err != nil {
		fmt.Fprintf(os.Stderr, "privsim: %v\n", err)
		os.Exit(1)
	}
}

func run(customers, purchases int, seed int64, unsafe, prepaid bool) error {
	if customers < 1 || purchases < 1 {
		return fmt.Errorf("need at least one customer and one purchase")
	}

	// Broker side.
	var (
		broker *market.Broker
		err    error
	)
	if unsafe {
		fmt.Println("tariff: UNSAFE c/V² (NewBroker would refuse this; using the unchecked constructor)")
		broker, err = market.NewBrokerUnchecked(pricing.UnsafeSteep{C: 1e16})
	} else {
		fmt.Println("tariff: base + c/V (passes the Theorem 4.2 audit)")
		broker, err = market.NewBroker(pricing.BaseFeePlusInverse{Base: 2, C: 1e9})
	}
	if err != nil {
		return err
	}
	table, err := dataset.Generate(dataset.GenerateConfig{Seed: seed})
	if err != nil {
		return err
	}
	names := make([]string, 0, 5)
	for _, p := range dataset.Pollutants() {
		series, err := table.Series(p)
		if err != nil {
			return err
		}
		parts, err := series.Partition(16)
		if err != nil {
			return err
		}
		nw, err := iot.New(parts, iot.Config{Seed: seed + int64(p)})
		if err != nil {
			return err
		}
		engine, err := core.New(nw, core.WithSeed(seed+100+int64(p)))
		if err != nil {
			return err
		}
		if err := broker.Register(p.String(), engine, series.Len(), 16); err != nil {
			return err
		}
		names = append(names, p.String())
	}
	var wallets *market.Wallets
	if prepaid {
		wallets = &market.Wallets{}
		broker.AttachWallets(wallets)
	}
	srv, err := market.Serve(broker, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("broker: %d datasets of %d records on %s\n\n", len(names), table.Len(), srv.Addr())

	// Consumer side — everyone shops over real TCP.
	rng := stats.NewRNG(seed + 999)
	menu := []estimator.Accuracy{
		{Alpha: 0.05, Delta: 0.9},
		{Alpha: 0.08, Delta: 0.7},
		{Alpha: 0.1, Delta: 0.6},
		{Alpha: 0.2, Delta: 0.5},
	}
	for c := 0; c < customers; c++ {
		name := fmt.Sprintf("customer-%02d", c)
		client, err := market.Dial(srv.Addr())
		if err != nil {
			return err
		}
		if prepaid {
			if _, err := client.Deposit(name, 1e7); err != nil {
				client.Close()
				return err
			}
		}
		consumer := market.HonestConsumer{Name: name, Market: market.RemoteMarket{Client: client}}
		for i := 0; i < purchases; i++ {
			ds := names[rng.Intn(len(names))]
			acc := menu[rng.Intn(len(menu))]
			l := float64(rng.Intn(150))
			u := l + 20 + float64(rng.Intn(150))
			p, err := consumer.Buy(ds, l, u, acc)
			if err != nil {
				client.Close()
				return fmt.Errorf("%s buying %s[%g,%g]: %w", name, ds, l, u, err)
			}
			fmt.Printf("%s bought %-18s [%5.0f,%5.0f] α=%.2f δ=%.1f -> %8.0f for %10.2f\n",
				name, ds, l, u, acc.Alpha, acc.Delta, p.Value, p.Cost)
		}
		client.Close()
	}

	// The adversary goes after the most accurate item on one dataset.
	advClient, err := market.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer advClient.Close()
	if prepaid {
		if _, err := advClient.Deposit("mallory", 1e9); err != nil {
			return err
		}
	}
	mallory := market.ArbitrageConsumer{
		Name:   "mallory",
		Market: market.RemoteMarket{Client: advClient},
		Menu:   pricing.DefaultMenu(),
	}
	target := estimator.Accuracy{Alpha: 0.05, Delta: 0.8}
	p, err := mallory.Buy(names[0], 60, 160, target)
	if err != nil {
		return err
	}
	verdict := "paid list price (no arbitrage possible)"
	if p.Arbitrage {
		verdict = fmt.Sprintf("ARBITRAGE: %d purchases for %.2f vs list %.2f (saved %.2f)",
			len(p.Receipts), p.Cost, p.DirectPrice, p.Savings())
	}
	fmt.Printf("\nmallory target %s α=%.2f δ=%.1f: %s\n", names[0], target.Alpha, target.Delta, verdict)

	// The books.
	ledger := broker.Ledger()
	fmt.Printf("\n=== broker books ===\n")
	fmt.Printf("sales: %d, revenue: %.2f\n", ledger.Purchases(), ledger.Revenue())
	for _, name := range names {
		if eps := ledger.PrivacySpent(name); eps > 0 {
			fmt.Printf("  %-20s privacy released Σε' = %.4f\n", name, eps)
		}
	}
	fmt.Printf("mallory spend: %.2f\n", ledger.SpentBy("mallory"))
	if sus := broker.Audit(); len(sus) > 0 {
		fmt.Println("audit findings:")
		for _, s := range sus {
			fmt.Printf("  %-12s %-18s [%g,%g] α=%g δ=%g repeated x%d (paid %.2f)\n",
				s.Customer, s.Dataset, s.L, s.U, s.Alpha, s.Delta, s.Count, s.TotalPaid)
		}
	} else {
		fmt.Println("audit: clean")
	}
	return nil
}
