// Command privquery is a consumer CLI for a privranged broker: it lists
// the catalog, quotes prices, and buys private range-counting answers.
//
// Usage:
//
//	privquery -addr 127.0.0.1:7070 catalog
//	privquery -addr 127.0.0.1:7070 quote -dataset ozone -alpha 0.05 -delta 0.9
//	privquery -addr 127.0.0.1:7070 buy -dataset ozone -l 50 -u 100 \
//	          -alpha 0.05 -delta 0.9 -customer alice
package main

import (
	"flag"
	"fmt"
	"os"

	"privrange/internal/market"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "privquery: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("privquery", flag.ContinueOnError)
	addr := global.String("addr", "127.0.0.1:7070", "broker address")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("need a subcommand: catalog, quote, buy, deposit, balance or audit")
	}

	client, err := market.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()

	switch rest[0] {
	case "catalog":
		infos, err := client.Catalog()
		if err != nil {
			return err
		}
		for _, info := range infos {
			fmt.Printf("%-24s n=%-8d nodes=%d\n", info.Name, info.N, info.Nodes)
		}
		return nil
	case "quote":
		fs := flag.NewFlagSet("quote", flag.ContinueOnError)
		ds := fs.String("dataset", "", "dataset name")
		alpha := fs.Float64("alpha", 0.05, "accuracy alpha")
		delta := fs.Float64("delta", 0.9, "confidence delta")
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		price, variance, err := client.Quote(*ds, *alpha, *delta)
		if err != nil {
			return err
		}
		fmt.Printf("price=%.4f variance=%.1f\n", price, variance)
		return nil
	case "buy":
		fs := flag.NewFlagSet("buy", flag.ContinueOnError)
		ds := fs.String("dataset", "", "dataset name")
		l := fs.Float64("l", 0, "range lower bound")
		u := fs.Float64("u", 0, "range upper bound")
		alpha := fs.Float64("alpha", 0.05, "accuracy alpha")
		delta := fs.Float64("delta", 0.9, "confidence delta")
		customer := fs.String("customer", "cli", "customer id for the ledger")
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		resp, err := client.Buy(market.Request{
			Dataset:  *ds,
			Customer: *customer,
			L:        *l,
			U:        *u,
			Alpha:    *alpha,
			Delta:    *delta,
		})
		if err != nil {
			return err
		}
		fmt.Printf("count=%.1f price=%.4f epsilon'=%.4f receipt=%d\n",
			resp.Value, resp.Price, resp.EpsilonPrime, resp.Receipt.ID)
		return nil
	case "deposit":
		fs := flag.NewFlagSet("deposit", flag.ContinueOnError)
		customer := fs.String("customer", "cli", "customer id")
		amount := fs.Float64("amount", 0, "amount to deposit")
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		bal, err := client.Deposit(*customer, *amount)
		if err != nil {
			return err
		}
		fmt.Printf("balance=%.4f\n", bal)
		return nil
	case "balance":
		fs := flag.NewFlagSet("balance", flag.ContinueOnError)
		customer := fs.String("customer", "cli", "customer id")
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		bal, err := client.Balance(*customer)
		if err != nil {
			return err
		}
		fmt.Printf("balance=%.4f\n", bal)
		return nil
	case "audit":
		sus, err := client.Audit()
		if err != nil {
			return err
		}
		if len(sus) == 0 {
			fmt.Println("no averaging patterns detected")
			return nil
		}
		for _, s := range sus {
			fmt.Printf("%-12s %-20s [%g, %g] alpha=%g delta=%g x%d paid=%.2f\n",
				s.Customer, s.Dataset, s.L, s.U, s.Alpha, s.Delta, s.Count, s.TotalPaid)
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}
