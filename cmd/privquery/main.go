// Command privquery is a consumer CLI for a privranged broker: it lists
// the catalog, quotes prices, and buys private range-counting answers.
//
// Usage:
//
//	privquery -addr 127.0.0.1:7070 catalog
//	privquery -addr 127.0.0.1:7070 quote -dataset ozone -alpha 0.05 -delta 0.9
//	privquery -addr 127.0.0.1:7070 buy -dataset ozone -l 50 -u 100 \
//	          -alpha 0.05 -delta 0.9 -customer alice
//	privquery trace -ops 127.0.0.1:7071 [-id 0123456789abcdef] [-n 5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"privrange/internal/market"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "privquery: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("privquery", flag.ContinueOnError)
	addr := global.String("addr", "127.0.0.1:7070", "broker address")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("need a subcommand: catalog, quote, buy, deposit, balance, audit or trace")
	}
	if rest[0] == "trace" {
		// trace talks to the ops HTTP endpoint, not the trading port.
		return runTrace(rest[1:])
	}

	client, err := market.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()

	switch rest[0] {
	case "catalog":
		infos, err := client.Catalog()
		if err != nil {
			return err
		}
		for _, info := range infos {
			fmt.Printf("%-24s n=%-8d nodes=%d\n", info.Name, info.N, info.Nodes)
		}
		return nil
	case "quote":
		fs := flag.NewFlagSet("quote", flag.ContinueOnError)
		ds := fs.String("dataset", "", "dataset name")
		alpha := fs.Float64("alpha", 0.05, "accuracy alpha")
		delta := fs.Float64("delta", 0.9, "confidence delta")
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		price, variance, err := client.Quote(*ds, *alpha, *delta)
		if err != nil {
			return err
		}
		fmt.Printf("price=%.4f variance=%.1f\n", price, variance)
		return nil
	case "buy":
		fs := flag.NewFlagSet("buy", flag.ContinueOnError)
		ds := fs.String("dataset", "", "dataset name")
		l := fs.Float64("l", 0, "range lower bound")
		u := fs.Float64("u", 0, "range upper bound")
		alpha := fs.Float64("alpha", 0.05, "accuracy alpha")
		delta := fs.Float64("delta", 0.9, "confidence delta")
		customer := fs.String("customer", "cli", "customer id for the ledger")
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		resp, err := client.Buy(market.Request{
			Dataset:  *ds,
			Customer: *customer,
			L:        *l,
			U:        *u,
			Alpha:    *alpha,
			Delta:    *delta,
		})
		if err != nil {
			return err
		}
		fmt.Printf("count=%.1f price=%.4f epsilon'=%.4f receipt=%d\n",
			resp.Value, resp.Price, resp.EpsilonPrime, resp.Receipt.ID)
		return nil
	case "deposit":
		fs := flag.NewFlagSet("deposit", flag.ContinueOnError)
		customer := fs.String("customer", "cli", "customer id")
		amount := fs.Float64("amount", 0, "amount to deposit")
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		bal, err := client.Deposit(*customer, *amount)
		if err != nil {
			return err
		}
		fmt.Printf("balance=%.4f\n", bal)
		return nil
	case "balance":
		fs := flag.NewFlagSet("balance", flag.ContinueOnError)
		customer := fs.String("customer", "cli", "customer id")
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		bal, err := client.Balance(*customer)
		if err != nil {
			return err
		}
		fmt.Printf("balance=%.4f\n", bal)
		return nil
	case "audit":
		sus, err := client.Audit()
		if err != nil {
			return err
		}
		if len(sus) == 0 {
			fmt.Println("no averaging patterns detected")
			return nil
		}
		for _, s := range sus {
			fmt.Printf("%-12s %-20s [%g, %g] alpha=%g delta=%g x%d paid=%.2f\n",
				s.Customer, s.Dataset, s.L, s.U, s.Alpha, s.Delta, s.Count, s.TotalPaid)
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

// traceSpan mirrors the telemetry SpanWire JSON; decoded here rather
// than imported so the CLI can read any broker's /traces, not just one
// built from the same tree.
type traceSpan struct {
	TraceID string            `json:"trace_id"`
	SpanID  string            `json:"span_id"`
	Parent  string            `json:"parent_id"`
	Name    string            `json:"name"`
	Start   int64             `json:"start_unix_ns"`
	DurNS   int64             `json:"duration_ns"`
	Attrs   map[string]string `json:"attrs"`
	Links   []string          `json:"links"`
}

// runTrace fetches /traces from the ops endpoint and renders each
// trace as an indented flame summary: span tree by parentage, children
// by start time, durations with percent-of-root and self-time.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	ops := fs.String("ops", "127.0.0.1:7071", "broker ops (HTTP) endpoint")
	id := fs.String("id", "", "show only this trace id (hex)")
	n := fs.Int("n", 5, "newest traces to show (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := http.Get("http://" + *ops + "/traces")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var wire struct {
		Emitted  uint64      `json:"spans_emitted"`
		Retained int         `json:"spans_retained"`
		Spans    []traceSpan `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return fmt.Errorf("decode /traces: %w", err)
	}
	if len(wire.Spans) == 0 {
		fmt.Println("no spans retained (is tracing enabled? privranged -trace-sample N)")
		return nil
	}

	// Group into traces, newest root first.
	byTrace := make(map[string][]traceSpan)
	var order []string
	for _, s := range wire.Spans {
		if *id != "" && s.TraceID != *id {
			continue
		}
		if _, seen := byTrace[s.TraceID]; !seen {
			order = append(order, s.TraceID)
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	if *id != "" && len(byTrace) == 0 {
		return fmt.Errorf("trace %s not found among %d retained spans", *id, len(wire.Spans))
	}
	sort.Slice(order, func(i, j int) bool {
		return traceStart(byTrace[order[i]]) > traceStart(byTrace[order[j]])
	})
	if *n > 0 && len(order) > *n {
		order = order[:*n]
	}

	fmt.Printf("%d spans retained (%d emitted since boot), %d traces shown\n",
		wire.Retained, wire.Emitted, len(order))
	for _, tid := range order {
		printTrace(tid, byTrace[tid])
	}
	return nil
}

func traceStart(spans []traceSpan) int64 {
	min := spans[0].Start
	for _, s := range spans[1:] {
		if s.Start < min {
			min = s.Start
		}
	}
	return min
}

func printTrace(tid string, spans []traceSpan) {
	children := make(map[string][]traceSpan)
	have := make(map[string]bool, len(spans))
	for _, s := range spans {
		have[s.SpanID] = true
	}
	var roots []traceSpan
	var total int64
	for _, s := range spans {
		if s.Parent == "" || !have[s.Parent] {
			roots = append(roots, s)
			total += s.DurNS
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	byStart := func(ss []traceSpan) {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
	}
	byStart(roots)
	fmt.Printf("\ntrace %s — %d spans, %s\n", tid, len(spans), durString(total))
	var walk func(s traceSpan, depth int, rootDur int64)
	walk = func(s traceSpan, depth int, rootDur int64) {
		var childSum int64
		kids := children[s.SpanID]
		byStart(kids)
		for _, c := range kids {
			childSum += c.DurNS
		}
		pct := ""
		if rootDur > 0 {
			pct = fmt.Sprintf(" %5.1f%%", 100*float64(s.DurNS)/float64(rootDur))
		}
		self := ""
		if len(kids) > 0 && s.DurNS > childSum {
			self = fmt.Sprintf("  self %s", durString(s.DurNS-childSum))
		}
		fmt.Printf("  %-*s%-*s %10s%s%s%s%s\n",
			2*depth, "", 40-2*depth, s.Name, durString(s.DurNS), pct, self,
			attrString(s.Attrs), linkString(s.Links))
		for _, c := range kids {
			walk(c, depth+1, rootDur)
		}
	}
	for _, r := range roots {
		walk(r, 0, r.DurNS)
	}
}

func durString(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func attrString(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, attrs[k])
	}
	return "  {" + strings.TrimSpace(b.String()) + "}"
}

func linkString(links []string) string {
	if len(links) == 0 {
		return ""
	}
	return fmt.Sprintf("  links=%d[%s…]", len(links), links[0])
}
