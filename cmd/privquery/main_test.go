package main

import (
	"testing"

	"privrange"
	"privrange/internal/dataset"
)

// startBroker spins a real marketplace server for CLI end-to-end tests.
func startBroker(t *testing.T) string {
	t.Helper()
	mp, err := privrange.NewMarketplace(privrange.Tariff{Base: 1, C: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 1, Records: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.AddDataset("ozone", series.Values, privrange.Options{Nodes: 8, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	mp.EnablePrepaid()
	srv, err := mp.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv.Addr()
}

func TestCLIEndToEnd(t *testing.T) {
	addr := startBroker(t)
	steps := [][]string{
		{"-addr", addr, "catalog"},
		{"-addr", addr, "quote", "-dataset", "ozone", "-alpha", "0.1", "-delta", "0.6"},
		{"-addr", addr, "deposit", "-customer", "cli-test", "-amount", "100000"},
		{"-addr", addr, "balance", "-customer", "cli-test"},
		{"-addr", addr, "buy", "-dataset", "ozone", "-l", "40", "-u", "90",
			"-alpha", "0.1", "-delta", "0.6", "-customer", "cli-test"},
		{"-addr", addr, "audit"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("privquery %v: %v", args, err)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	addr := startBroker(t)
	cases := [][]string{
		{"-addr", addr},
		{"-addr", addr, "frobnicate"},
		{"-addr", addr, "quote", "-dataset", "missing", "-alpha", "0.1", "-delta", "0.6"},
		{"-addr", addr, "buy", "-dataset", "ozone", "-l", "40", "-u", "90",
			"-alpha", "0.1", "-delta", "0.6", "-customer", "broke"}, // unfunded
		{"-addr", "127.0.0.1:1", "catalog"}, // nothing listening
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("privquery %v should fail", args)
		}
	}
}
