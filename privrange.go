// Package privrange is a Go implementation of "Trading Private Range
// Counting over Big IoT Data" (Cai & He, ICDCS 2019): a broker framework
// that sells differentially-private approximate range-counting answers
// over distributed IoT data.
//
// The pipeline, end to end:
//
//   - IoT nodes Bernoulli-sample their local data and ship each sampled
//     value with its local rank; the base station needs only ~√k/α
//     samples instead of the whole dataset.
//   - The RankCounting estimator reconstructs unbiased range counts from
//     those rank-annotated samples with variance ≤ 8k/p², independent of
//     the queried range's width.
//   - For each customer request Λ(α, δ), an optimizer splits the error
//     budget between sampling and Laplace noise so the released answer is
//     (α, δ)-accurate with the smallest effective privacy budget
//     ε′ = ln(1 + p(e^ε − 1)).
//   - An arbitrage-avoiding tariff prices answers by their variance so
//     buying many cheap noisy answers and averaging them never undercuts
//     the honest price.
//
// # Quick start
//
//	sys, err := privrange.NewSystem(values, privrange.Options{Nodes: 16})
//	if err != nil { ... }
//	ans, err := sys.Count(50, 100, privrange.Accuracy{Alpha: 0.05, Delta: 0.9})
//	fmt.Println(ans.Value, ans.EpsilonPrime)
//
// For the trading layer (pricing, ledger, TCP protocol), see Marketplace.
package privrange

import (
	"errors"
	"fmt"

	"privrange/internal/core"
	"privrange/internal/dp"
	"privrange/internal/estimator"
	"privrange/internal/iot"
	"privrange/internal/optimize"
	"privrange/internal/shard"
)

// Accuracy is an (α, δ) accuracy requirement (Definition 2.2 of the
// paper): the released count must be within ±α·|D| of the truth with
// probability at least δ. Both parameters must lie strictly in (0, 1).
type Accuracy struct {
	Alpha float64
	Delta float64
}

func (a Accuracy) internal() estimator.Accuracy {
	return estimator.Accuracy{Alpha: a.Alpha, Delta: a.Delta}
}

// Validate reports whether the requirement is well-formed.
func (a Accuracy) Validate() error { return a.internal().Validate() }

// Answer is one released private range-counting result.
type Answer struct {
	// Value is the ε′-differentially-private estimate. It may fall
	// outside [0, N]; Clamped truncates it for display.
	Value float64
	// Clamped is Value truncated to [0, N] (safe post-processing).
	Clamped float64
	// AlphaPrime and DeltaPrime are the internal sampling-phase accuracy
	// the optimizer chose.
	AlphaPrime, DeltaPrime float64
	// Epsilon is the Laplace mechanism's base budget; EpsilonPrime is the
	// effective guarantee after privacy amplification by sampling — the
	// quantity the system minimizes.
	Epsilon, EpsilonPrime float64
	// SamplingRate is the Bernoulli rate the answer was computed at.
	SamplingRate float64
	// Nodes and N describe the deployment.
	Nodes, N int
	// Coverage is the fraction of records held by reachable nodes when
	// the answer was released: 1 means full coverage, less means the
	// answer leaned on stale samples from unreachable nodes (see
	// Options.BestEffort).
	Coverage float64
	// CollectionVersion identifies the sample state the answer was
	// computed against; it moves whenever any node's stored sample is
	// rewritten.
	CollectionVersion uint64
}

// CommCost reports the deployment's cumulative communication bill.
type CommCost struct {
	// Messages is the number of protocol messages exchanged.
	Messages int
	// Bytes is the hop-weighted on-the-wire volume.
	Bytes int64
	// SamplesShipped counts rank-annotated samples transferred.
	SamplesShipped int
}

// ErrInfeasible is returned when a requested accuracy cannot be met. Use
// errors.Is.
var ErrInfeasible = errors.New("privrange: accuracy requirement infeasible")

// Options configures NewSystem. The zero value is usable.
type Options struct {
	// Nodes is the number of simulated IoT nodes the data is spread
	// across. Zero selects 16.
	Nodes int
	// Shards is the number of broker shards the fleet is partitioned
	// across (consistent hashing on node id). Each shard owns its own
	// collection loop, base station, and columnar sample index; queries
	// scatter-gather across shards and release one answer with exactly
	// one noise draw and one budget charge, bit-identical to the
	// single-broker engine for any shard count. Zero or one selects the
	// single-broker deployment.
	Shards int
	// Seed drives all randomness (sampling and noise) deterministically.
	Seed int64
	// TotalBudget caps the cumulative effective privacy loss Σε′ across
	// answers; once exhausted, Count fails. Zero means uncapped.
	TotalBudget float64
	// Tree switches the simulated network from the flat topology to a
	// balanced aggregation tree (affects communication cost only).
	Tree bool
	// CacheAnswers re-serves already-released answers for repeated
	// identical requests at zero additional privacy cost (free
	// post-processing), which also makes averaging repeat purchases
	// pointless. Off by default: the paper's broker draws fresh noise
	// per sale.
	CacheAnswers bool
	// BestEffort tolerates partially-failed collection rounds: when some
	// nodes cannot be reached, queries are answered at whatever rate the
	// degraded network still guarantees, and the released Answer's
	// Coverage/CollectionVersion fields document the degradation. Off by
	// default — the strict policy fails the query on any collection
	// error, today's historical behavior.
	BestEffort bool
	// Faults schedules per-node fault injection (per-node loss rates,
	// byte corruption, crash/recover windows) for chaos testing. Keys
	// are node ids in [0, Nodes).
	Faults map[int]iot.FaultProfile
}

// System is a self-contained deployment: simulated IoT network, base
// station, and private query engine over one dataset. A System is safe
// for concurrent use — queries estimate in parallel against immutable
// sample snapshots while ingestion and collection serialize behind
// writer locks (see DESIGN.md §6 for the concurrency model).
type System struct {
	network    deployment
	engine     *core.Engine
	accountant *dp.Accountant
}

// deployment is the facade's view of the collection tier: the engine's
// Source contract plus the operational surface System exposes. Both the
// single-broker iot.Network and the sharded shard.Cluster satisfy it.
type deployment interface {
	core.Source
	Coverage() float64
	SetDown(nodeID int, down bool) error
	IngestRound(perNode [][]float64) error
	Cost() iot.CostReport
}

// NewSystem builds a deployment over the given readings. The values are
// distributed across opt.Nodes simulated sensors; samples are collected
// lazily when the first query needs them.
func NewSystem(values []float64, opt Options) (*System, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("privrange: no data")
	}
	nodes := opt.Nodes
	if nodes == 0 {
		nodes = 16
	}
	if nodes < 1 || nodes > len(values) {
		return nil, fmt.Errorf("privrange: node count %d outside [1, %d]", nodes, len(values))
	}
	parts := partition(values, nodes)
	topo := iot.Flat
	if opt.Tree {
		topo = iot.Tree
	}
	cfg := iot.Config{Seed: opt.Seed, Topology: topo, Faults: opt.Faults}
	var network deployment
	if opt.Shards > 1 {
		cluster, err := shard.New(parts, opt.Shards, cfg)
		if err != nil {
			return nil, err
		}
		network = cluster
	} else {
		if opt.Shards < 0 {
			return nil, fmt.Errorf("privrange: negative shard count %d", opt.Shards)
		}
		nw, err := iot.New(parts, cfg)
		if err != nil {
			return nil, err
		}
		network = nw
	}
	accountant, err := dp.NewAccountant(opt.TotalBudget)
	if err != nil {
		return nil, err
	}
	policy := core.Strict
	if opt.BestEffort {
		policy = core.BestEffort
	}
	engine, err := core.New(network,
		core.WithSeed(opt.Seed+1),
		core.WithAccountant(accountant),
		core.WithAnswerCache(opt.CacheAnswers),
		core.WithDegradationPolicy(policy),
	)
	if err != nil {
		return nil, err
	}
	return &System{network: network, engine: engine, accountant: accountant}, nil
}

func partition(values []float64, k int) [][]float64 {
	parts := make([][]float64, k)
	base := len(values) / k
	extra := len(values) % k
	offset := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		parts[i] = values[offset : offset+size]
		offset += size
	}
	return parts
}

// Count answers an (α, δ)-range-counting query over [l, u] with the
// strongest feasible differential privacy. The network is driven to
// collect more samples automatically when needed.
func (s *System) Count(l, u float64, acc Accuracy) (*Answer, error) {
	ans, err := s.engine.Answer(estimator.Query{L: l, U: u}, acc.internal())
	if err != nil {
		if errors.Is(err, optimize.ErrInfeasible) || errors.Is(err, core.ErrUnachievable) {
			return nil, fmt.Errorf("%w: %w", ErrInfeasible, err)
		}
		return nil, err
	}
	return &Answer{
		Value:             ans.Value,
		Clamped:           ans.Clamped(),
		AlphaPrime:        ans.Plan.AlphaPrime,
		DeltaPrime:        ans.Plan.DeltaPrime,
		Epsilon:           ans.Plan.Epsilon,
		EpsilonPrime:      ans.Plan.EpsilonPrime,
		SamplingRate:      ans.Rate,
		Nodes:             ans.Nodes,
		N:                 ans.N,
		Coverage:          ans.Coverage,
		CollectionVersion: ans.CollectionVersion,
	}, nil
}

// Histogram is a released band histogram: Counts[i] estimates the
// number of readings in [Boundaries[i], Boundaries[i+1]), with the last
// band closed on the right.
type Histogram struct {
	Boundaries []float64
	Counts     []float64
	// EpsilonPrime is the effective privacy budget the release consumed.
	EpsilonPrime float64
}

// Histogram releases an ε-differentially-private band histogram. The
// bands are disjoint, so the whole histogram costs one ε (parallel
// composition) — far cheaper than asking each band as a separate range
// query. Counts are normalized to be non-negative and sum to |D|.
func (s *System) Histogram(boundaries []float64, epsilon float64) (*Histogram, error) {
	h, effective, err := s.engine.Histogram(boundaries, epsilon)
	if err != nil {
		return nil, err
	}
	if err := h.Normalize(float64(s.N())); err != nil {
		return nil, err
	}
	return &Histogram{
		Boundaries:   h.Boundaries,
		Counts:       h.Counts,
		EpsilonPrime: effective,
	}, nil
}

// QuantileResult is a released private quantile.
type QuantileResult struct {
	// Value is the selected quantile value.
	Value float64
	// EpsilonPrime is the effective privacy budget the release consumed.
	EpsilonPrime float64
}

// Quantile releases an ε-differentially-private q-quantile (0 < q < 1)
// of the dataset, selected by the exponential mechanism over the
// collected samples.
func (s *System) Quantile(q, epsilon float64) (*QuantileResult, error) {
	v, effective, err := s.engine.Quantile(q, epsilon)
	if err != nil {
		return nil, err
	}
	return &QuantileResult{Value: v, EpsilonPrime: effective}, nil
}

// Range is a query interval [L, U] for batch requests.
type Range struct {
	L, U float64
}

// CountBatch answers many range queries at one shared accuracy level
// with a single optimizer plan; each answer carries independent noise
// and the total privacy cost (m·ε′) is charged up front, all or nothing.
func (s *System) CountBatch(ranges []Range, acc Accuracy) ([]*Answer, error) {
	queries := make([]estimator.Query, len(ranges))
	for i, r := range ranges {
		queries[i] = estimator.Query{L: r.L, U: r.U}
	}
	raw, err := s.engine.AnswerBatch(queries, acc.internal())
	if err != nil {
		if errors.Is(err, optimize.ErrInfeasible) || errors.Is(err, core.ErrUnachievable) {
			return nil, fmt.Errorf("%w: %w", ErrInfeasible, err)
		}
		return nil, err
	}
	out := make([]*Answer, len(raw))
	for i, ans := range raw {
		out[i] = &Answer{
			Value:             ans.Value,
			Clamped:           ans.Clamped(),
			AlphaPrime:        ans.Plan.AlphaPrime,
			DeltaPrime:        ans.Plan.DeltaPrime,
			Epsilon:           ans.Plan.Epsilon,
			EpsilonPrime:      ans.Plan.EpsilonPrime,
			SamplingRate:      ans.Rate,
			Nodes:             ans.Nodes,
			N:                 ans.N,
			Coverage:          ans.Coverage,
			CollectionVersion: ans.CollectionVersion,
		}
	}
	return out, nil
}

// Ingest appends new readings to the deployment (continuous data
// collection), spreading them across the simulated nodes round-robin and
// refreshing the collected samples at the current rate. Subsequent
// queries see the grown dataset.
func (s *System) Ingest(values []float64) error {
	if len(values) == 0 {
		return nil
	}
	k := s.network.NumNodes()
	perNode := make([][]float64, k)
	for i, v := range values {
		perNode[i%k] = append(perNode[i%k], v)
	}
	return s.network.IngestRound(perNode)
}

// Hitter is one released heavy hitter: a frequent reading and its noisy
// estimated frequency.
type Hitter struct {
	Value float64
	Count float64
}

// TopK releases the k most frequent readings under ε-DP (peeling
// exponential mechanism plus noisy counts).
func (s *System) TopK(k int, epsilon float64) ([]Hitter, float64, error) {
	hitters, effective, err := s.engine.TopK(k, epsilon)
	if err != nil {
		return nil, 0, err
	}
	out := make([]Hitter, len(hitters))
	for i, h := range hitters {
		out[i] = Hitter{Value: h.Value, Count: h.Count}
	}
	return out, effective, nil
}

// SpentBudget returns the cumulative effective privacy loss Σε′ released
// so far.
func (s *System) SpentBudget() float64 { return s.accountant.Spent() }

// Cost returns the network's communication bill.
func (s *System) Cost() CommCost {
	c := s.network.Cost()
	return CommCost{Messages: c.Messages, Bytes: c.Bytes, SamplesShipped: c.SamplesShipped}
}

// SamplingRate returns the Bernoulli rate the base station currently
// holds (0 before the first query).
func (s *System) SamplingRate() float64 { return s.network.Rate() }

// Coverage returns the fraction of records held by currently reachable
// nodes (1 when every node is up).
func (s *System) Coverage() float64 { return s.network.Coverage() }

// SetNodeDown marks a node unreachable (true) or reachable (false) for
// availability experiments; queries keep serving the node's stale
// samples while it is down.
func (s *System) SetNodeDown(id int, down bool) error { return s.network.SetDown(id, down) }

// N returns the dataset size |D|.
func (s *System) N() int { return s.network.TotalN() }

// Nodes returns the node count k.
func (s *System) Nodes() int { return s.network.NumNodes() }
