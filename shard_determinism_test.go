package privrange

import (
	"math"
	"runtime"
	"testing"
)

// shardTestValues builds a dataset with heavy duplicates — the
// adversarial shape for rank semantics — large enough to engage the
// parallel estimation paths.
func shardTestValues(n int) []float64 {
	values := make([]float64, n)
	for i := range values {
		values[i] = float64((i * 7919) % 500)
	}
	return values
}

// releaseScript drives one deterministic mixed workload — single
// counts, a batch, an ingest round, more counts — and returns every
// released value in order. Two systems over the same data and seed must
// produce bit-identical scripts regardless of shard count.
func releaseScript(t *testing.T, sys *System) []float64 {
	t.Helper()
	acc := Accuracy{Alpha: 0.05, Delta: 0.8}
	var out []float64
	record := func(ans *Answer, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ans.Value, ans.Clamped, ans.EpsilonPrime, ans.SamplingRate, ans.Coverage,
			float64(ans.N), float64(ans.Nodes))
	}
	record(sys.Count(100, 300, acc))
	record(sys.Count(0, 50, acc))
	batch, err := sys.CountBatch([]Range{{L: 10, U: 490}, {L: 250, U: 250}, {L: -5, U: 120}}, acc)
	if err != nil {
		t.Fatal(err)
	}
	for _, ans := range batch {
		out = append(out, ans.Value, ans.EpsilonPrime)
	}
	if err := sys.Ingest(shardTestValues(300)); err != nil {
		t.Fatal(err)
	}
	record(sys.Count(100, 300, acc))
	record(sys.Count(400, 499, Accuracy{Alpha: 0.08, Delta: 0.7}))
	out = append(out, sys.SpentBudget(), float64(sys.N()), sys.SamplingRate())
	return out
}

// TestShardCountDeterminism is the tentpole's acceptance bar: for any
// shard count S and any GOMAXPROCS, a sharded deployment releases
// answers bit-identical to the single-broker engine over the same data
// and seed — same noise, same plans, same provenance, same budget
// trail. (CollectionVersion is deliberately not compared: it composes
// as a sum of per-shard versions, monotonic but not numerically equal.)
func TestShardCountDeterminism(t *testing.T) {
	values := shardTestValues(6000)
	run := func(shards, procs int) []float64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		sys, err := NewSystem(values, Options{Nodes: 48, Seed: 17, Shards: shards})
		if err != nil {
			t.Fatalf("S=%d: %v", shards, err)
		}
		return releaseScript(t, sys)
	}
	want := run(0, runtime.NumCPU()) // unsharded oracle
	for _, s := range []int{1, 2, 3, 8} {
		for _, procs := range []int{1, runtime.NumCPU()} {
			got := run(s, procs)
			if len(got) != len(want) {
				t.Fatalf("S=%d procs=%d: script length %d != %d", s, procs, len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Errorf("S=%d procs=%d release %d: %v != oracle %v", s, procs, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardSingleChargePerQuery pins the tentpole's release discipline:
// a sharded deployment charges the accountant exactly once per released
// query — never once per shard.
func TestShardSingleChargePerQuery(t *testing.T) {
	values := shardTestValues(4000)
	acc := Accuracy{Alpha: 0.05, Delta: 0.8}
	single, err := NewSystem(values, Options{Nodes: 32, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSystem(values, Options{Nodes: 32, Seed: 6, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []*System{single, sharded} {
		if _, err := sys.Count(100, 300, acc); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.CountBatch([]Range{{L: 0, U: 100}, {L: 200, U: 400}}, acc); err != nil {
			t.Fatal(err)
		}
	}
	if single.SpentBudget() != sharded.SpentBudget() {
		t.Errorf("sharded spent %v, single-broker %v: shards must not multiply charges",
			sharded.SpentBudget(), single.SpentBudget())
	}
	if single.accountant.Queries() != sharded.accountant.Queries() {
		t.Errorf("sharded released %d accountant charges, single-broker %d",
			sharded.accountant.Queries(), single.accountant.Queries())
	}
}
