// Quickstart: build a deployment over one pollutant series and buy a
// single differentially-private range count through the public API.
package main

import (
	"fmt"
	"log"

	"privrange"
	"privrange/internal/dataset"
)

func main() {
	// 1. Data: a CityPulse-equivalent ozone series (17 568 readings).
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Deployment: spread the readings across 16 simulated IoT nodes.
	sys, err := privrange.NewSystem(series.Values, privrange.Options{Nodes: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Ask: how many readings were in the moderate band [50, 100],
	// within ±5% of the dataset size, with 90% confidence?
	ans, err := sys.Count(50, 100, privrange.Accuracy{Alpha: 0.05, Delta: 0.9})
	if err != nil {
		log.Fatal(err)
	}

	truth, err := series.RangeCount(50, 100)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("private count:   %.0f (truth: %d, contract: ±%.0f)\n",
		ans.Clamped, truth, 0.05*float64(sys.N()))
	fmt.Printf("privacy:         epsilon' = %.4f (base epsilon %.4f, amplified by sampling at p=%.4f)\n",
		ans.EpsilonPrime, ans.Epsilon, ans.SamplingRate)
	fmt.Printf("internal split:  alpha' = %.4f, delta' = %.4f\n", ans.AlphaPrime, ans.DeltaPrime)
	cost := sys.Cost()
	fmt.Printf("communication:   %d samples shipped, %d bytes, %d messages (vs %d raw readings)\n",
		cost.SamplesShipped, cost.Bytes, cost.Messages, sys.N())
}
