// IoT network simulation: the substrate under the broker. Shows the
// sampling protocol's communication economics — initial collection,
// accuracy-driven top-up (only the new samples travel), streaming inserts
// forcing a node to replace its sample, and flat vs tree routing costs.
package main

import (
	"fmt"
	"log"

	"privrange/internal/dataset"
	"privrange/internal/estimator"
	"privrange/internal/iot"
)

func main() {
	series, err := dataset.GenerateSeries(dataset.NitrogenDioxide, dataset.GenerateConfig{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := series.Partition(24)
	if err != nil {
		log.Fatal(err)
	}

	nw, err := iot.New(parts, iot.Config{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d nodes, %d readings total\n\n", nw.NumNodes(), nw.TotalN())

	report := func(stage string) {
		c := nw.Cost()
		fmt.Printf("%-34s rate=%.3f samples=%6d bytes=%8d msgs=%4d piggybacked=%d\n",
			stage, nw.Rate(), c.SamplesShipped, c.Bytes, c.Messages, c.PiggybackedReports)
	}

	// Stage 1: coarse collection good enough for loose queries.
	if _, err := nw.EnsureRate(0.05); err != nil {
		log.Fatal(err)
	}
	report("initial collection (p=0.05):")

	// Stage 2: a tighter query arrives; top up to p=0.25. Only the new
	// samples ship.
	if _, err := nw.EnsureRate(0.25); err != nil {
		log.Fatal(err)
	}
	report("top-up to p=0.25:")

	// Query against the collected samples.
	q := estimator.Query{L: 40, U: 90}
	truth, err := nw.ExactCount(q.L, q.U)
	if err != nil {
		log.Fatal(err)
	}
	rc := estimator.RankCounting{P: nw.Rate()}
	est, err := rc.Estimate(nw.SampleSets(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrange count [40, 90]: estimate %.0f vs truth %d (|D|·p = %.0f samples held)\n\n",
		est, truth, float64(nw.TotalN())*nw.Rate())

	// Stage 3: flat vs tree routing for the same work.
	tree, err := iot.New(parts, iot.Config{Seed: 9, Topology: iot.Tree, TreeFanout: 2})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tree.EnsureRate(0.25); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routing cost at p=0.25: flat=%d bytes, binary tree=%d bytes (%.1fx)\n",
		nw.Cost().Bytes, tree.Cost().Bytes, float64(tree.Cost().Bytes)/float64(nw.Cost().Bytes))
}
