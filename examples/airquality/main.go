// Air-quality monitoring: the paper's motivating scenario. A city
// monitors all five pollution indexes, asking for the number of readings
// in the standard AQI bands (good / moderate / unhealthy) at different
// accuracy levels, and tracks the cumulative privacy budget each series
// has consumed.
package main

import (
	"fmt"
	"log"

	"privrange"
	"privrange/internal/dataset"
)

type band struct {
	name string
	l, u float64
}

func main() {
	table, err := dataset.Generate(dataset.GenerateConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	bands := []band{
		{name: "good      [0,  50]", l: 0, u: 50},
		{name: "moderate  (50, 100]", l: 50.0001, u: 100},
		{name: "unhealthy (100,300]", l: 100.0001, u: 300},
	}
	// Tighter accuracy for the health-critical band, looser elsewhere.
	accs := []privrange.Accuracy{
		{Alpha: 0.08, Delta: 0.7},
		{Alpha: 0.08, Delta: 0.7},
		{Alpha: 0.04, Delta: 0.9},
	}

	for _, p := range dataset.Pollutants() {
		series, err := table.Series(p)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := privrange.NewSystem(series.Values, privrange.Options{
			Nodes: 20,
			Seed:  int64(p),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (n=%d, k=%d)\n", p, sys.N(), sys.Nodes())
		for i, b := range bands {
			ans, err := sys.Count(b.l, b.u, accs[i])
			if err != nil {
				log.Fatalf("%s %s: %v", p, b.name, err)
			}
			truth, err := series.RangeCount(b.l, b.u)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-20s private=%7.0f  truth=%7d  eps'=%.4f\n",
				b.name, ans.Clamped, truth, ans.EpsilonPrime)
		}
		fmt.Printf("  total privacy spent: %.4f; samples shipped: %d of %d readings\n\n",
			sys.SpentBudget(), sys.Cost().SamplesShipped, sys.N())
	}
}
