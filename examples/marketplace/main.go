// Marketplace: the trading layer end to end, over a real TCP connection.
// An honest consumer and the averaging adversary of Example 4.1 shop at
// two brokers — one with the audited arbitrage-avoiding tariff, one with
// a deliberately exploitable tariff — and the ledgers show who paid what.
package main

import (
	"fmt"
	"log"

	"privrange/internal/core"
	"privrange/internal/dataset"
	"privrange/internal/estimator"
	"privrange/internal/iot"
	"privrange/internal/market"
	"privrange/internal/pricing"
)

func main() {
	series, err := dataset.GenerateSeries(dataset.ParticulateMatter, dataset.GenerateConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	target := estimator.Accuracy{Alpha: 0.05, Delta: 0.8}
	fmt.Println("target purchase: Λ(alpha=0.05, delta=0.8) on particulate_matter[60, 160]")
	fmt.Println()

	safe, err := market.NewBroker(pricing.BaseFeePlusInverse{Base: 2, C: 1e9})
	if err != nil {
		log.Fatal(err)
	}
	runScenario("SAFE tariff (base fee + c/V, passes the Theorem 4.2 audit)", safe, series, target)

	unsafe, err := market.NewBrokerUnchecked(pricing.UnsafeSteep{C: 1e16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	runScenario("UNSAFE tariff (c/V², fails the audit — NewBroker would refuse it)", unsafe, series, target)
}

func runScenario(title string, broker *market.Broker, series *dataset.Series, target estimator.Accuracy) {
	fmt.Println("==", title)
	parts, err := series.Partition(12)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := iot.New(parts, iot.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.New(nw, core.WithSeed(13))
	if err != nil {
		log.Fatal(err)
	}
	if err := broker.Register("particulate_matter", engine, series.Len(), 12); err != nil {
		log.Fatal(err)
	}

	// Serve over TCP so both consumers shop remotely.
	srv, err := market.Serve(broker, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	shop := func(name string, buy func(market.Market) (market.Purchase, error)) {
		client, err := market.Dial(srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		p, err := buy(market.RemoteMarket{Client: client})
		if err != nil {
			log.Fatal(err)
		}
		strategy := "bought the target directly"
		if p.Arbitrage {
			strategy = fmt.Sprintf("averaged %d cheaper answers (arbitrage, saved %.2f)", len(p.Receipts), p.Savings())
		}
		fmt.Printf("  %-8s value=%9.1f paid=%8.2f (list %8.2f) — %s\n",
			name, p.Value, p.Cost, p.DirectPrice, strategy)
	}

	shop("alice", func(m market.Market) (market.Purchase, error) {
		return market.HonestConsumer{Name: "alice", Market: m}.
			Buy("particulate_matter", 60, 160, target)
	})
	shop("mallory", func(m market.Market) (market.Purchase, error) {
		return market.ArbitrageConsumer{Name: "mallory", Market: m, Menu: pricing.DefaultMenu()}.
			Buy("particulate_matter", 60, 160, target)
	})

	truth, err := series.RangeCount(60, 160)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  (true count %d; broker revenue %.2f over %d sales; alice paid %.2f, mallory %.2f)\n",
		truth,
		broker.Ledger().Revenue(),
		broker.Ledger().Purchases(),
		broker.Ledger().SpentBy("alice"),
		broker.Ledger().SpentBy("mallory"))
}
