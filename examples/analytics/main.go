// Analytics: the richer private aggregates built on the same collected
// samples — an ε-DP band histogram (one ε for all bands via parallel
// composition), private quantiles via the exponential mechanism, and the
// cumulative privacy-budget ledger across all releases.
package main

import (
	"fmt"
	"log"
	"strings"

	"privrange"
	"privrange/internal/dataset"
)

func main() {
	series, err := dataset.GenerateSeries(dataset.ParticulateMatter, dataset.GenerateConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := privrange.NewSystem(series.Values, privrange.Options{Nodes: 16, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("particulate_matter: %d readings across %d nodes\n\n", sys.N(), sys.Nodes())

	// 1. One ε buys the whole AQI band histogram.
	bands := []float64{0, 50, 100, 150, 200, 300}
	h, err := sys.Histogram(bands, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	labels := []string{"good", "moderate", "usg", "unhealthy", "hazardous"}
	fmt.Printf("AQI histogram (one release, effective eps' = %.4f):\n", h.EpsilonPrime)
	for i, c := range h.Counts {
		truth, err := series.RangeCount(h.Boundaries[i], h.Boundaries[i+1]-0.0001)
		if err != nil {
			log.Fatal(err)
		}
		barLen := int(c / float64(sys.N()) * 50)
		fmt.Printf("  [%3.0f,%3.0f) %-10s %7.0f (truth %6d) %s\n",
			h.Boundaries[i], h.Boundaries[i+1], labels[i], c, truth, strings.Repeat("#", barLen))
	}

	// 2. Private quantiles of the pollution distribution.
	fmt.Println("\nprivate quantiles (exponential mechanism):")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
		res, err := sys.Quantile(q, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  q=%.2f -> %.0f (eps' %.4f)\n", q, res.Value, res.EpsilonPrime)
	}

	// 3. The most frequent readings (heavy hitters), privately selected.
	hitters, eff, err := sys.TopK(3, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop readings (eps' %.4f):\n", eff)
	for i, h := range hitters {
		fmt.Printf("  #%d value=%.0f count~%.0f\n", i+1, h.Value, h.Count)
	}

	// 4. A range count through the (α, δ) path shares the same budget
	// ledger.
	ans, err := sys.Count(100, 300, privrange.Accuracy{Alpha: 0.05, Delta: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunhealthy-band count: %.0f (eps' %.4f)\n", ans.Clamped, ans.EpsilonPrime)
	fmt.Printf("cumulative privacy spent across all releases: %.4f\n", sys.SpentBudget())
}
