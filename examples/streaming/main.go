// Streaming: continuous monitoring over a growing dataset. Readings
// arrive in rounds; after each round the deployment refreshes its
// samples (only new samples travel) and the broker answers a standing
// pollution-alert query — how many readings this deployment has seen in
// the elevated band (AQI ≥ 80) — under differential privacy.
package main

import (
	"fmt"
	"log"

	"privrange"
	"privrange/internal/dataset"
)

func main() {
	series, err := dataset.GenerateSeries(dataset.Ozone, dataset.GenerateConfig{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	const (
		initial   = 5000
		roundSize = 1500
	)
	sys, err := privrange.NewSystem(series.Values[:initial], privrange.Options{Nodes: 12, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	acc := privrange.Accuracy{Alpha: 0.08, Delta: 0.7}

	fmt.Println("round    n       private>=80    truth   eps'     samples-shipped")
	offset := initial
	for round := 0; offset+roundSize <= series.Len() && round < 8; round++ {
		if round > 0 {
			if err := sys.Ingest(series.Values[offset : offset+roundSize]); err != nil {
				log.Fatal(err)
			}
			offset += roundSize
		}
		ans, err := sys.Count(80, 300, acc)
		if err != nil {
			log.Fatal(err)
		}
		truth := 0
		for _, v := range series.Values[:offset] {
			if v >= 80 && v <= 300 {
				truth++
			}
		}
		fmt.Printf("%5d %6d %14.0f %7d   %.4f   %d\n",
			round, sys.N(), ans.Clamped, truth, ans.EpsilonPrime, sys.Cost().SamplesShipped)
	}
	fmt.Printf("\ncumulative privacy spent: %.4f over %d rounds\n", sys.SpentBudget(), 8)
}
